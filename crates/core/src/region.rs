//! Region handles and page-range allocation for the mmap-like API.

use std::fmt;

use mem_sim::{page_count, PageId};

use crate::ViyojitError;

/// Handle to one mapped NV-DRAM region, returned by `vmap`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub u32);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region#{}", self.0)
    }
}

/// One live mapping: a contiguous run of pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionInfo {
    /// First page of the mapping.
    pub first_page: PageId,
    /// Number of pages mapped.
    pub pages: u64,
    /// Bytes requested at `vmap` time (<= pages * PAGE_SIZE).
    pub len_bytes: u64,
}

impl RegionInfo {
    /// Iterates over the pages of this region.
    pub fn iter_pages(&self) -> impl Iterator<Item = PageId> + '_ {
        (self.first_page.0..self.first_page.0 + self.pages).map(PageId)
    }

    /// Absolute byte address of `offset` within this region.
    pub fn abs_addr(&self, offset: u64) -> u64 {
        self.first_page.base_addr() + offset
    }
}

/// First-fit allocator of contiguous page runs within the NV-DRAM space.
///
/// # Examples
///
/// ```
/// use viyojit::RegionTable;
///
/// let mut t = RegionTable::new(16);
/// let a = t.map(4096 * 3)?;
/// assert_eq!(t.info(a)?.pages, 3);
/// t.unmap(a)?;
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegionTable {
    total_pages: u64,
    regions: Vec<Option<RegionInfo>>,
    /// Sorted, disjoint, coalesced free runs as (first_page, pages).
    free_runs: Vec<(u64, u64)>,
}

impl RegionTable {
    /// Creates a table managing `total_pages` initially-free pages.
    pub fn new(total_pages: u64) -> Self {
        RegionTable {
            total_pages,
            regions: Vec::new(),
            free_runs: vec![(0, total_pages)],
        }
    }

    /// Total pages managed.
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Pages currently mapped.
    pub fn mapped_pages(&self) -> u64 {
        self.regions.iter().flatten().map(|r| r.pages).sum()
    }

    /// Maps `len_bytes` bytes, returning the new region's handle.
    ///
    /// # Errors
    ///
    /// - [`ViyojitError::EmptyMapping`] if `len_bytes` is zero.
    /// - [`ViyojitError::OutOfSpace`] if no contiguous free run is large
    ///   enough.
    pub fn map(&mut self, len_bytes: u64) -> Result<RegionId, ViyojitError> {
        if len_bytes == 0 {
            return Err(ViyojitError::EmptyMapping);
        }
        let pages = page_count(len_bytes);
        let run_idx = self
            .free_runs
            .iter()
            .position(|&(_, len)| len >= pages)
            .ok_or(ViyojitError::OutOfSpace {
                requested_pages: pages,
                largest_free_run: self.free_runs.iter().map(|&(_, l)| l).max().unwrap_or(0),
            })?;
        let (start, run_len) = self.free_runs[run_idx];
        if run_len == pages {
            self.free_runs.remove(run_idx);
        } else {
            self.free_runs[run_idx] = (start + pages, run_len - pages);
        }
        let info = RegionInfo {
            first_page: PageId(start),
            pages,
            len_bytes,
        };
        // Reuse a dead slot if available.
        if let Some(slot) = self.regions.iter().position(|r| r.is_none()) {
            self.regions[slot] = Some(info);
            Ok(RegionId(slot as u32))
        } else {
            self.regions.push(Some(info));
            Ok(RegionId((self.regions.len() - 1) as u32))
        }
    }

    /// Unmaps a region, returning its former extent.
    ///
    /// # Errors
    ///
    /// Returns [`ViyojitError::BadRegion`] if the handle is not live.
    pub fn unmap(&mut self, region: RegionId) -> Result<RegionInfo, ViyojitError> {
        let slot = self
            .regions
            .get_mut(region.0 as usize)
            .ok_or(ViyojitError::BadRegion(region))?;
        let info = slot.take().ok_or(ViyojitError::BadRegion(region))?;
        // Insert the freed run and coalesce neighbours.
        let run = (info.first_page.0, info.pages);
        let pos = self.free_runs.partition_point(|&(start, _)| start < run.0);
        self.free_runs.insert(pos, run);
        self.coalesce();
        Ok(info)
    }

    fn coalesce(&mut self) {
        let mut i = 0;
        while i + 1 < self.free_runs.len() {
            let (a_start, a_len) = self.free_runs[i];
            let (b_start, b_len) = self.free_runs[i + 1];
            if a_start + a_len == b_start {
                self.free_runs[i] = (a_start, a_len + b_len);
                self.free_runs.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }

    /// Looks up a live region.
    ///
    /// # Errors
    ///
    /// Returns [`ViyojitError::BadRegion`] if the handle is not live.
    pub fn info(&self, region: RegionId) -> Result<RegionInfo, ViyojitError> {
        self.regions
            .get(region.0 as usize)
            .copied()
            .flatten()
            .ok_or(ViyojitError::BadRegion(region))
    }

    /// Bounds-checks an access and returns the absolute byte address.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::BadRegion`] for dead handles,
    /// [`ViyojitError::OutOfRange`] for accesses past the mapped length.
    pub fn resolve(&self, region: RegionId, offset: u64, len: usize) -> Result<u64, ViyojitError> {
        let info = self.info(region)?;
        if offset
            .checked_add(len as u64)
            .is_none_or(|end| end > info.len_bytes)
        {
            return Err(ViyojitError::OutOfRange {
                region,
                offset,
                len,
            });
        }
        Ok(info.abs_addr(offset))
    }

    /// Iterates over live regions.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, RegionInfo)> + '_ {
        self.regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|r| (RegionId(i as u32), r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_sim::PAGE_SIZE;

    #[test]
    fn map_rounds_up_to_pages() {
        let mut t = RegionTable::new(10);
        let r = t.map(1).unwrap();
        assert_eq!(t.info(r).unwrap().pages, 1);
        let r2 = t.map(PAGE_SIZE as u64 + 1).unwrap();
        assert_eq!(t.info(r2).unwrap().pages, 2);
        assert_eq!(t.mapped_pages(), 3);
    }

    #[test]
    fn mappings_do_not_overlap() {
        let mut t = RegionTable::new(10);
        let a = t.map(PAGE_SIZE as u64 * 4).unwrap();
        let b = t.map(PAGE_SIZE as u64 * 4).unwrap();
        let (ia, ib) = (t.info(a).unwrap(), t.info(b).unwrap());
        let a_range = ia.first_page.0..ia.first_page.0 + ia.pages;
        assert!(!a_range.contains(&ib.first_page.0));
    }

    #[test]
    fn unmap_coalesces_and_allows_remapping() {
        let mut t = RegionTable::new(8);
        let a = t.map(PAGE_SIZE as u64 * 3).unwrap();
        let b = t.map(PAGE_SIZE as u64 * 3).unwrap();
        let _c = t.map(PAGE_SIZE as u64 * 2).unwrap();
        assert!(t.map(1).is_err(), "space exhausted");
        t.unmap(a).unwrap();
        t.unmap(b).unwrap();
        // After coalescing, a 6-page mapping fits where two 3-page ones were.
        let big = t.map(PAGE_SIZE as u64 * 6).unwrap();
        assert_eq!(t.info(big).unwrap().pages, 6);
    }

    #[test]
    fn dead_handles_are_rejected() {
        let mut t = RegionTable::new(4);
        let r = t.map(100).unwrap();
        t.unmap(r).unwrap();
        assert_eq!(t.info(r), Err(ViyojitError::BadRegion(r)));
        assert_eq!(t.unmap(r), Err(ViyojitError::BadRegion(r)));
    }

    #[test]
    fn resolve_checks_requested_length_not_page_count() {
        let mut t = RegionTable::new(4);
        let r = t.map(100).unwrap(); // 1 page, but only 100 bytes requested
        assert!(t.resolve(r, 0, 100).is_ok());
        assert!(matches!(
            t.resolve(r, 50, 51),
            Err(ViyojitError::OutOfRange { .. })
        ));
    }

    #[test]
    fn out_of_space_reports_largest_run() {
        let mut t = RegionTable::new(4);
        let _ = t.map(PAGE_SIZE as u64 * 3).unwrap();
        match t.map(PAGE_SIZE as u64 * 2) {
            Err(ViyojitError::OutOfSpace {
                requested_pages,
                largest_free_run,
            }) => {
                assert_eq!(requested_pages, 2);
                assert_eq!(largest_free_run, 1);
            }
            other => panic!("expected OutOfSpace, got {other:?}"),
        }
    }

    #[test]
    fn empty_mapping_is_rejected() {
        let mut t = RegionTable::new(4);
        assert_eq!(t.map(0), Err(ViyojitError::EmptyMapping));
    }

    #[test]
    fn slot_reuse_keeps_handles_unique() {
        let mut t = RegionTable::new(8);
        let a = t.map(1).unwrap();
        t.unmap(a).unwrap();
        let b = t.map(1).unwrap();
        // The slot may be reused; the old handle must still be dead only if
        // it maps to a different generation. We accept reuse (like fds) and
        // simply require the new handle to resolve.
        assert!(t.info(b).is_ok());
    }
}
