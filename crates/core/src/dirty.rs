//! The dirty set: the synchronous, exact view of which NV-DRAM pages are
//! inconsistent with the backing SSD (§4.1).
//!
//! The paper rejects periodic counting because the dirty population can
//! overshoot the budget between samples; Viyojit instead maintains a
//! *synchronous* running count, incremented in the write-fault handler the
//! instant a page is first dirtied and decremented when its flush to the
//! SSD completes. `DirtySet` is that structure, plus the in-flight
//! bookkeeping the flusher needs.
//!
//! The per-page states are stored as two [`Bitmap2L`]s — one for `Dirty`,
//! one for `InFlight`; a page in neither is `Clean` — so iterating the
//! dirty population is O(dirty), not O(DRAM), and the invariant recount is
//! a word-level popcount pass over the set bits only.

use mem_sim::{Bitmap2L, PageId};

use crate::InvariantViolation;

/// Lifecycle state of a page as seen by the dirty tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Identical to its SSD copy (or never written); write-protected.
    Clean,
    /// Dirty and writable; counted against the budget.
    Dirty,
    /// Dirty, re-protected, with a flush IO in flight; still counted
    /// against the budget until the IO completes (the data is not durable
    /// yet).
    InFlight,
}

/// Exact dirty-page accounting for one NV-DRAM space.
///
/// # Examples
///
/// ```
/// use mem_sim::PageId;
/// use viyojit::{DirtySet, PageState};
///
/// let mut set = DirtySet::new(8);
/// set.mark_dirty(PageId(3));
/// assert_eq!(set.state(PageId(3)), PageState::Dirty);
/// assert_eq!(set.dirty_count(), 1);
/// set.mark_in_flight(PageId(3));
/// assert_eq!(set.dirty_count(), 1, "in-flight pages still count");
/// set.mark_clean(PageId(3));
/// assert_eq!(set.dirty_count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct DirtySet {
    /// Pages in the `Dirty` state. Disjoint from `in_flight`.
    dirty: Bitmap2L,
    /// Pages in the `InFlight` state. Disjoint from `dirty`.
    in_flight: Bitmap2L,
    dirty_count: u64,
    in_flight_count: u64,
}

impl DirtySet {
    /// Creates a tracker over `pages` clean pages.
    pub fn new(pages: usize) -> Self {
        DirtySet {
            dirty: Bitmap2L::new(pages),
            in_flight: Bitmap2L::new(pages),
            dirty_count: 0,
            in_flight_count: 0,
        }
    }

    /// Number of pages tracked.
    pub fn len(&self) -> usize {
        self.dirty.len()
    }

    /// `true` if the tracker covers no pages.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// The state of `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn state(&self, page: PageId) -> PageState {
        if self.dirty.test(page.index()) {
            PageState::Dirty
        } else if self.in_flight.test(page.index()) {
            PageState::InFlight
        } else {
            PageState::Clean
        }
    }

    /// Pages currently counted against the budget (dirty + in-flight).
    pub fn dirty_count(&self) -> u64 {
        self.dirty_count
    }

    /// Pages with a flush IO in flight.
    pub fn in_flight_count(&self) -> u64 {
        self.in_flight_count
    }

    /// Marks a clean page dirty (fault-handler step 4 of Fig. 6).
    ///
    /// The state check is fused into the bit operations — `set`'s return
    /// value already says whether the page was dirty, so the fault path
    /// pays two word accesses instead of the four a separate `state()`
    /// probe cost.
    ///
    /// # Panics
    ///
    /// Panics if the page is not clean: the fault handler only runs on
    /// write-protected pages, and dirty pages are never protected.
    #[inline]
    pub fn mark_dirty(&mut self, page: PageId) {
        let i = page.index();
        let was_clean = self.dirty.set(i) && !self.in_flight.test(i);
        assert!(was_clean, "page {page} dirtied twice");
        self.dirty_count += 1;
    }

    /// Marks a dirty page as having a flush in flight (Fig. 6 step 6: the
    /// page has just been re-protected and its IO submitted).
    ///
    /// # Panics
    ///
    /// Panics if the page is not in the `Dirty` state.
    #[inline]
    pub fn mark_in_flight(&mut self, page: PageId) {
        let i = page.index();
        assert!(self.dirty.clear(i), "only dirty pages can be flushed");
        self.in_flight.set(i);
        self.in_flight_count += 1;
    }

    /// Marks an in-flight page clean (its flush IO completed; the budget
    /// slot is released).
    ///
    /// # Panics
    ///
    /// Panics if the page is not in the `InFlight` state.
    #[inline]
    pub fn mark_clean(&mut self, page: PageId) {
        let i = page.index();
        assert!(self.in_flight.clear(i), "only in-flight pages complete");
        self.dirty_count -= 1;
        self.in_flight_count -= 1;
    }

    /// Discards a dirty page without flushing it (its mapping is going
    /// away, so its contents no longer need durability). Releases the
    /// budget slot.
    ///
    /// # Panics
    ///
    /// Panics if the page is not in the `Dirty` state.
    #[inline]
    pub fn discard_dirty(&mut self, page: PageId) {
        let i = page.index();
        assert!(self.dirty.clear(i), "only dirty pages can be discarded");
        self.dirty_count -= 1;
    }

    /// Iterates over pages in the `Dirty` state (flushable victims), in
    /// ascending order, skipping clean space word-by-word.
    pub fn iter_dirty(&self) -> impl Iterator<Item = PageId> + '_ {
        self.dirty.iter_ones().map(|i| PageId(i as u64))
    }

    /// Iterates over every page counted against the budget, in ascending
    /// order.
    pub fn iter_counted(&self) -> impl Iterator<Item = PageId> + '_ {
        self.dirty
            .iter_ones_union(&self.in_flight)
            .map(|i| PageId(i as u64))
    }

    /// Appends the `Dirty`-state pages to `out` in ascending order — the
    /// eager, density-dispatched walk behind [`DirtySet::iter_dirty`]:
    /// the scan path follows the maintained density, and uniformly dirty
    /// 512-page runs are appended through the huge tier without touching
    /// leaf words.
    pub fn collect_dirty_into(&self, out: &mut Vec<PageId>) {
        self.dirty.collect_into_map(out, |i| PageId(i as u64));
    }

    /// Appends every page counted against the budget (dirty ∪ in-flight)
    /// to `out` in ascending order. The two bitmaps are disjoint, so a
    /// run whose popcounts sum to the run length is uniformly counted and
    /// is appended wholesale in O(1); empty runs are skipped without
    /// touching leaf words; only mixed runs pay a word-union walk. This
    /// is the emergency obligation-collection scan: O(runs + mixed
    /// words), not O(words).
    pub fn collect_counted_into(&self, out: &mut Vec<PageId>) {
        use mem_sim::bitmap::{extend_from_word, RUN_PAGES, RUN_WORDS};
        mem_sim::dispatch::record(Bitmap2L::path_for(
            (self.dirty_count + self.in_flight_count) as usize,
            self.dirty.len().max(1),
        ));
        out.reserve(self.dirty_count as usize);
        let (d, f) = (&self.dirty, &self.in_flight);
        let (hd, hf) = (d.huge(), f.huge());
        let to_page = |i: usize| PageId(i as u64);
        for r in 0..hd.runs() {
            let pop = hd.run_pop(r) + hf.run_pop(r);
            if pop == 0 {
                continue;
            }
            let base = r * RUN_PAGES;
            let run_len = hd.run_len(r);
            if pop == run_len {
                out.extend((base..base + run_len).map(to_page));
                continue;
            }
            let w0 = r * RUN_WORDS;
            let w1 = (w0 + RUN_WORDS).min(d.word_count());
            for w in w0..w1 {
                let bits = d.word(w) | f.word(w);
                if bits != 0 {
                    extend_from_word(out, w, bits, to_page);
                }
            }
        }
    }

    /// The `Dirty`-state pages as a bitmap, for word-level scans.
    pub fn dirty_bits(&self) -> &Bitmap2L {
        &self.dirty
    }

    /// The `InFlight`-state pages as a bitmap, for word-level scans.
    pub fn in_flight_bits(&self) -> &Bitmap2L {
        &self.in_flight
    }

    /// Resets every page to `Clean` and both counters to zero (recovery
    /// re-establishes the startup state). O(words).
    pub fn reset(&mut self) {
        self.dirty.clear_all();
        self.in_flight.clear_all();
        self.dirty_count = 0;
        self.in_flight_count = 0;
    }

    /// Checks internal consistency: the running counters must match a
    /// recount of the per-page states, and no page may be both dirty and
    /// in-flight. One word-level pass over the set bits of both bitmaps —
    /// the two full-vector scans this used to take are gone.
    ///
    /// # Errors
    ///
    /// [`InvariantViolation::CounterOutOfSync`] naming the counter that
    /// drifted.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let mut dirty_only = 0u64;
        let mut in_flight = 0u64;
        let mut overlap = 0u64;
        self.dirty.for_each_word_union(&self.in_flight, |_, d, f| {
            dirty_only += u64::from(d.count_ones());
            in_flight += u64::from(f.count_ones());
            overlap += u64::from((d & f).count_ones());
        });
        // A page in both bitmaps would read as `Dirty` through `state()`,
        // silently hiding an in-flight IO: surface it as an in-flight
        // counter recount mismatch.
        let counted_dirty = dirty_only + in_flight - overlap;
        if counted_dirty != self.dirty_count || self.dirty.count() as u64 != dirty_only {
            return Err(InvariantViolation::CounterOutOfSync {
                counter: "dirty",
                counted: counted_dirty,
                recorded: self.dirty_count,
            });
        }
        if in_flight != self.in_flight_count || overlap != 0 {
            return Err(InvariantViolation::CounterOutOfSync {
                counter: "in-flight",
                counted: in_flight - overlap,
                recorded: self.in_flight_count,
            });
        }
        Ok(())
    }

    /// Panicking wrapper over [`DirtySet::check_invariants`] for tests.
    ///
    /// # Panics
    ///
    /// Panics with the violation's `Display` text on any inconsistency.
    pub fn validate(&self) {
        if let Err(violation) = self.check_invariants() {
            panic!("{violation}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_clean_dirty_inflight_clean() {
        let mut s = DirtySet::new(2);
        assert_eq!(s.state(PageId(0)), PageState::Clean);
        s.mark_dirty(PageId(0));
        assert_eq!(s.state(PageId(0)), PageState::Dirty);
        s.mark_in_flight(PageId(0));
        assert_eq!(s.state(PageId(0)), PageState::InFlight);
        assert_eq!(s.in_flight_count(), 1);
        s.mark_clean(PageId(0));
        assert_eq!(s.state(PageId(0)), PageState::Clean);
        assert_eq!(s.dirty_count(), 0);
        s.validate();
    }

    #[test]
    fn count_includes_in_flight_pages() {
        // Durability requires counting in-flight pages: their bytes are not
        // durable until the IO completes.
        let mut s = DirtySet::new(4);
        s.mark_dirty(PageId(0));
        s.mark_dirty(PageId(1));
        s.mark_in_flight(PageId(0));
        assert_eq!(s.dirty_count(), 2);
    }

    #[test]
    fn iter_dirty_excludes_in_flight() {
        let mut s = DirtySet::new(4);
        s.mark_dirty(PageId(0));
        s.mark_dirty(PageId(2));
        s.mark_in_flight(PageId(0));
        assert_eq!(s.iter_dirty().collect::<Vec<_>>(), vec![PageId(2)]);
        assert_eq!(
            s.iter_counted().collect::<Vec<_>>(),
            vec![PageId(0), PageId(2)]
        );
    }

    #[test]
    #[should_panic(expected = "dirtied twice")]
    fn double_dirty_panics() {
        let mut s = DirtySet::new(1);
        s.mark_dirty(PageId(0));
        s.mark_dirty(PageId(0));
    }

    #[test]
    #[should_panic(expected = "only dirty pages")]
    fn flushing_clean_page_panics() {
        let mut s = DirtySet::new(1);
        s.mark_in_flight(PageId(0));
    }

    #[test]
    #[should_panic(expected = "only in-flight pages")]
    fn completing_non_inflight_page_panics() {
        let mut s = DirtySet::new(1);
        s.mark_dirty(PageId(0));
        s.mark_clean(PageId(0));
    }

    #[test]
    fn iteration_spans_word_boundaries() {
        let mut s = DirtySet::new(200);
        for i in [63u64, 64, 130] {
            s.mark_dirty(PageId(i));
        }
        s.mark_in_flight(PageId(64));
        assert_eq!(
            s.iter_dirty().collect::<Vec<_>>(),
            vec![PageId(63), PageId(130)]
        );
        assert_eq!(
            s.iter_counted().collect::<Vec<_>>(),
            vec![PageId(63), PageId(64), PageId(130)]
        );
        s.validate();
    }

    #[test]
    fn collect_matches_iter_across_run_classes() {
        // Run 0 uniformly counted (dirty + in-flight sum to 512), run 1
        // mixed, run 2 empty: the collection walks all three classes.
        let mut s = DirtySet::new(3 * 512);
        for i in 0..512u64 {
            s.mark_dirty(PageId(i));
        }
        for i in 0..128u64 {
            s.mark_in_flight(PageId(i * 4));
        }
        for i in (512..1024u64).step_by(17) {
            s.mark_dirty(PageId(i));
        }
        let mut dirty = Vec::new();
        s.collect_dirty_into(&mut dirty);
        assert_eq!(dirty, s.iter_dirty().collect::<Vec<_>>());
        let mut counted = Vec::new();
        s.collect_counted_into(&mut counted);
        assert_eq!(counted, s.iter_counted().collect::<Vec<_>>());
        assert_eq!(counted.len(), 512 + 512usize.div_ceil(17));
        s.validate();
    }

    #[test]
    fn reset_returns_to_startup_state() {
        let mut s = DirtySet::new(100);
        s.mark_dirty(PageId(7));
        s.mark_dirty(PageId(99));
        s.mark_in_flight(PageId(7));
        s.reset();
        assert_eq!(s.dirty_count(), 0);
        assert_eq!(s.in_flight_count(), 0);
        assert_eq!(s.state(PageId(7)), PageState::Clean);
        s.validate();
    }
}
