//! The dirty set: the synchronous, exact view of which NV-DRAM pages are
//! inconsistent with the backing SSD (§4.1).
//!
//! The paper rejects periodic counting because the dirty population can
//! overshoot the budget between samples; Viyojit instead maintains a
//! *synchronous* running count, incremented in the write-fault handler the
//! instant a page is first dirtied and decremented when its flush to the
//! SSD completes. `DirtySet` is that structure, plus the in-flight
//! bookkeeping the flusher needs.

use mem_sim::PageId;

use crate::InvariantViolation;

/// Lifecycle state of a page as seen by the dirty tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageState {
    /// Identical to its SSD copy (or never written); write-protected.
    Clean,
    /// Dirty and writable; counted against the budget.
    Dirty,
    /// Dirty, re-protected, with a flush IO in flight; still counted
    /// against the budget until the IO completes (the data is not durable
    /// yet).
    InFlight,
}

/// Exact dirty-page accounting for one NV-DRAM space.
///
/// # Examples
///
/// ```
/// use mem_sim::PageId;
/// use viyojit::{DirtySet, PageState};
///
/// let mut set = DirtySet::new(8);
/// set.mark_dirty(PageId(3));
/// assert_eq!(set.state(PageId(3)), PageState::Dirty);
/// assert_eq!(set.dirty_count(), 1);
/// set.mark_in_flight(PageId(3));
/// assert_eq!(set.dirty_count(), 1, "in-flight pages still count");
/// set.mark_clean(PageId(3));
/// assert_eq!(set.dirty_count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct DirtySet {
    states: Vec<PageState>,
    dirty_count: u64,
    in_flight_count: u64,
}

impl DirtySet {
    /// Creates a tracker over `pages` clean pages.
    pub fn new(pages: usize) -> Self {
        DirtySet {
            states: vec![PageState::Clean; pages],
            dirty_count: 0,
            in_flight_count: 0,
        }
    }

    /// Number of pages tracked.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if the tracker covers no pages.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The state of `page`.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn state(&self, page: PageId) -> PageState {
        self.states[page.index()]
    }

    /// Pages currently counted against the budget (dirty + in-flight).
    pub fn dirty_count(&self) -> u64 {
        self.dirty_count
    }

    /// Pages with a flush IO in flight.
    pub fn in_flight_count(&self) -> u64 {
        self.in_flight_count
    }

    /// Marks a clean page dirty (fault-handler step 4 of Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if the page is not clean: the fault handler only runs on
    /// write-protected pages, and dirty pages are never protected.
    pub fn mark_dirty(&mut self, page: PageId) {
        let s = &mut self.states[page.index()];
        assert_eq!(*s, PageState::Clean, "page {page} dirtied twice");
        *s = PageState::Dirty;
        self.dirty_count += 1;
    }

    /// Marks a dirty page as having a flush in flight (Fig. 6 step 6: the
    /// page has just been re-protected and its IO submitted).
    ///
    /// # Panics
    ///
    /// Panics if the page is not in the `Dirty` state.
    pub fn mark_in_flight(&mut self, page: PageId) {
        let s = &mut self.states[page.index()];
        assert_eq!(*s, PageState::Dirty, "only dirty pages can be flushed");
        *s = PageState::InFlight;
        self.in_flight_count += 1;
    }

    /// Marks an in-flight page clean (its flush IO completed; the budget
    /// slot is released).
    ///
    /// # Panics
    ///
    /// Panics if the page is not in the `InFlight` state.
    pub fn mark_clean(&mut self, page: PageId) {
        let s = &mut self.states[page.index()];
        assert_eq!(*s, PageState::InFlight, "only in-flight pages complete");
        *s = PageState::Clean;
        self.dirty_count -= 1;
        self.in_flight_count -= 1;
    }

    /// Discards a dirty page without flushing it (its mapping is going
    /// away, so its contents no longer need durability). Releases the
    /// budget slot.
    ///
    /// # Panics
    ///
    /// Panics if the page is not in the `Dirty` state.
    pub fn discard_dirty(&mut self, page: PageId) {
        let s = &mut self.states[page.index()];
        assert_eq!(*s, PageState::Dirty, "only dirty pages can be discarded");
        *s = PageState::Clean;
        self.dirty_count -= 1;
    }

    /// Iterates over pages in the `Dirty` state (flushable victims).
    pub fn iter_dirty(&self) -> impl Iterator<Item = PageId> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == PageState::Dirty)
            .map(|(i, _)| PageId(i as u64))
    }

    /// Iterates over every page counted against the budget.
    pub fn iter_counted(&self) -> impl Iterator<Item = PageId> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != PageState::Clean)
            .map(|(i, _)| PageId(i as u64))
    }

    /// Checks internal consistency: the running counters must match a
    /// recount of the per-page states.
    ///
    /// # Errors
    ///
    /// [`InvariantViolation::CounterOutOfSync`] naming the counter that
    /// drifted.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        let dirty = self
            .states
            .iter()
            .filter(|s| **s != PageState::Clean)
            .count() as u64;
        let in_flight = self
            .states
            .iter()
            .filter(|s| **s == PageState::InFlight)
            .count() as u64;
        if dirty != self.dirty_count {
            return Err(InvariantViolation::CounterOutOfSync {
                counter: "dirty",
                counted: dirty,
                recorded: self.dirty_count,
            });
        }
        if in_flight != self.in_flight_count {
            return Err(InvariantViolation::CounterOutOfSync {
                counter: "in-flight",
                counted: in_flight,
                recorded: self.in_flight_count,
            });
        }
        Ok(())
    }

    /// Panicking wrapper over [`DirtySet::check_invariants`] for tests.
    ///
    /// # Panics
    ///
    /// Panics with the violation's `Display` text on any inconsistency.
    pub fn validate(&self) {
        if let Err(violation) = self.check_invariants() {
            panic!("{violation}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_clean_dirty_inflight_clean() {
        let mut s = DirtySet::new(2);
        assert_eq!(s.state(PageId(0)), PageState::Clean);
        s.mark_dirty(PageId(0));
        assert_eq!(s.state(PageId(0)), PageState::Dirty);
        s.mark_in_flight(PageId(0));
        assert_eq!(s.state(PageId(0)), PageState::InFlight);
        assert_eq!(s.in_flight_count(), 1);
        s.mark_clean(PageId(0));
        assert_eq!(s.state(PageId(0)), PageState::Clean);
        assert_eq!(s.dirty_count(), 0);
        s.validate();
    }

    #[test]
    fn count_includes_in_flight_pages() {
        // Durability requires counting in-flight pages: their bytes are not
        // durable until the IO completes.
        let mut s = DirtySet::new(4);
        s.mark_dirty(PageId(0));
        s.mark_dirty(PageId(1));
        s.mark_in_flight(PageId(0));
        assert_eq!(s.dirty_count(), 2);
    }

    #[test]
    fn iter_dirty_excludes_in_flight() {
        let mut s = DirtySet::new(4);
        s.mark_dirty(PageId(0));
        s.mark_dirty(PageId(2));
        s.mark_in_flight(PageId(0));
        assert_eq!(s.iter_dirty().collect::<Vec<_>>(), vec![PageId(2)]);
        assert_eq!(
            s.iter_counted().collect::<Vec<_>>(),
            vec![PageId(0), PageId(2)]
        );
    }

    #[test]
    #[should_panic(expected = "dirtied twice")]
    fn double_dirty_panics() {
        let mut s = DirtySet::new(1);
        s.mark_dirty(PageId(0));
        s.mark_dirty(PageId(0));
    }

    #[test]
    #[should_panic(expected = "only dirty pages")]
    fn flushing_clean_page_panics() {
        let mut s = DirtySet::new(1);
        s.mark_in_flight(PageId(0));
    }

    #[test]
    #[should_panic(expected = "only in-flight pages")]
    fn completing_non_inflight_page_panics() {
        let mut s = DirtySet::new(1);
        s.mark_dirty(PageId(0));
        s.mark_clean(PageId(0));
    }
}
