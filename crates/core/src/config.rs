//! Runtime configuration of the Viyojit manager.

use battery_sim::{Battery, DirtyBudget, PowerModel};
use sim_clock::SimDuration;

use crate::{FlushCodec, TargetPolicy, ViyojitError};

/// How the proactive-copy threshold is derived from the dirty budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdPolicy {
    /// The paper's online algorithm (§5.3): `threshold = budget - EWMA of
    /// new-dirty-pages-per-epoch`, so slack tracks the observed burst size.
    Adaptive,
    /// `threshold = budget - slack` with a fixed slack. The two failure
    /// modes §5.3 describes: slack too small and bursts block writers on
    /// SSD copies; slack too large and the copier writes out pages that
    /// were about to be rewritten, wasting SSD bandwidth and wear.
    FixedSlack(u64),
}

/// Configuration of a [`Viyojit`](crate::Viyojit) instance.
///
/// The defaults mirror the paper's evaluation setup (§6.1): a 1 ms epoch,
/// at most 16 outstanding IO requests, TLB flushes on every epoch walk,
/// an EWMA weight of 0.75 on the newest observation, a 64-epoch update
/// history, and least-recently-updated target selection.
///
/// # Examples
///
/// ```
/// use viyojit::ViyojitConfig;
///
/// let cfg = ViyojitConfig::with_budget_pages(512);
/// assert_eq!(cfg.dirty_budget_pages, 512);
/// assert_eq!(cfg.max_outstanding_ios, 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ViyojitConfig {
    /// Maximum number of pages that may be dirty (inconsistent with the
    /// SSD) at any instant.
    pub dirty_budget_pages: u64,
    /// Length of the dirty-bit sampling epoch (§5.2).
    pub epoch: SimDuration,
    /// Maximum IO requests outstanding at the SSD (§6.1: 16).
    pub max_outstanding_ios: usize,
    /// Flush the TLB before each epoch walk so dirty bits are exact.
    /// Disabling this reproduces the §6.3 ablation.
    pub tlb_flush_on_walk: bool,
    /// EWMA weight given to the newest per-epoch new-dirty-page count when
    /// predicting dirty-page pressure (§5.3: 0.75).
    pub pressure_alpha: f64,
    /// How the proactive-copy threshold is derived (§5.3's adaptive
    /// algorithm by default; fixed slack for the ablation).
    pub threshold_policy: ThresholdPolicy,
    /// Number of epochs of per-page update history retained (§5.2: 64).
    pub history_epochs: u32,
    /// Policy used to pick copy-out victims.
    pub target_policy: TargetPolicy,
    /// Payload treatment for copy-out writes (§7: compression/dedup).
    pub flush_codec: FlushCodec,
    /// Mondrian-style sub-page flushing (§7): ship only the 64 B sectors
    /// modified since the last flush, when a durable base copy exists.
    pub sector_flush: bool,
}

impl ViyojitConfig {
    /// Starts a validating builder seeded with the paper defaults and the
    /// given dirty budget. Unlike the panicking constructors, invalid
    /// combinations surface as [`ViyojitError::InvalidConfig`] from
    /// [`ViyojitConfigBuilder::build`]. Prefer this over direct struct
    /// construction.
    ///
    /// # Examples
    ///
    /// ```
    /// use viyojit::ViyojitConfig;
    ///
    /// let cfg = ViyojitConfig::builder(512).pressure_alpha(0.5).build()?;
    /// assert_eq!(cfg.dirty_budget_pages, 512);
    ///
    /// assert!(ViyojitConfig::builder(0).build().is_err());
    /// # Ok::<(), viyojit::ViyojitError>(())
    /// ```
    pub fn builder(dirty_budget_pages: u64) -> ViyojitConfigBuilder {
        ViyojitConfigBuilder {
            cfg: ViyojitConfig {
                dirty_budget_pages,
                epoch: SimDuration::from_millis(1),
                max_outstanding_ios: 16,
                tlb_flush_on_walk: true,
                pressure_alpha: 0.75,
                threshold_policy: ThresholdPolicy::Adaptive,
                history_epochs: 64,
                target_policy: TargetPolicy::LeastRecentlyUpdated,
                flush_codec: FlushCodec::Raw,
                sector_flush: false,
            },
            total_pages: None,
        }
    }

    /// Paper-default configuration with an explicit dirty budget, the way
    /// the evaluation sweeps battery capacity ("we use the dirty budget as
    /// a proxy for the battery capacity", §6.1).
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero: a zero budget would forbid every write.
    pub fn with_budget_pages(pages: u64) -> Self {
        assert!(pages > 0, "dirty budget must allow at least one dirty page");
        ViyojitConfig {
            dirty_budget_pages: pages,
            epoch: SimDuration::from_millis(1),
            max_outstanding_ios: 16,
            tlb_flush_on_walk: true,
            pressure_alpha: 0.75,
            threshold_policy: ThresholdPolicy::Adaptive,
            history_epochs: 64,
            target_policy: TargetPolicy::LeastRecentlyUpdated,
            flush_codec: FlushCodec::Raw,
            sector_flush: false,
        }
    }

    /// Paper-default configuration with the budget derived from a real
    /// battery provisioning via §5.1's chain (battery -> hold-up time ->
    /// flushable bytes).
    ///
    /// # Panics
    ///
    /// Panics if the derived budget rounds down to zero pages.
    pub fn from_battery(
        battery: &Battery,
        power: &PowerModel,
        flush_bandwidth_bytes_per_sec: u64,
    ) -> Self {
        let budget = DirtyBudget::derive(battery, power, flush_bandwidth_bytes_per_sec);
        Self::with_budget_pages(budget.pages())
    }

    /// Returns `self` with a different epoch length.
    #[must_use]
    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        assert!(!epoch.is_zero(), "epoch must be positive");
        self.epoch = epoch;
        self
    }

    /// Returns `self` with a different outstanding-IO cap.
    #[must_use]
    pub fn with_max_outstanding_ios(mut self, ios: usize) -> Self {
        assert!(ios > 0, "at least one outstanding IO is required to flush");
        self.max_outstanding_ios = ios;
        self
    }

    /// Returns `self` with TLB flushing on walks enabled or disabled.
    #[must_use]
    pub fn with_tlb_flush_on_walk(mut self, flush: bool) -> Self {
        self.tlb_flush_on_walk = flush;
        self
    }

    /// Returns `self` with a different EWMA weight.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    #[must_use]
    pub fn with_pressure_alpha(mut self, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "pressure alpha must be in (0,1], got {alpha}"
        );
        self.pressure_alpha = alpha;
        self
    }

    /// Returns `self` with a different victim-selection policy.
    #[must_use]
    pub fn with_target_policy(mut self, policy: TargetPolicy) -> Self {
        self.target_policy = policy;
        self
    }

    /// Returns `self` with a different threshold policy.
    #[must_use]
    pub fn with_threshold_policy(mut self, policy: ThresholdPolicy) -> Self {
        self.threshold_policy = policy;
        self
    }

    /// Returns `self` with a different copy-out payload codec.
    #[must_use]
    pub fn with_flush_codec(mut self, codec: FlushCodec) -> Self {
        self.flush_codec = codec;
        self
    }

    /// Returns `self` with sub-page sector flushing enabled or disabled.
    #[must_use]
    pub fn with_sector_flush(mut self, enabled: bool) -> Self {
        self.sector_flush = enabled;
        self
    }
}

/// Validating builder for [`ViyojitConfig`], created by
/// [`ViyojitConfig::builder`].
///
/// Setters never panic; every constraint is checked once in
/// [`ViyojitConfigBuilder::build`], which rejects a zero budget, a budget
/// exceeding the NV-DRAM capacity (when [`ViyojitConfigBuilder::total_pages`]
/// is supplied), a zero epoch, an EWMA weight outside `(0, 1]`, a zero
/// outstanding-IO cap, and a zero-length history.
#[derive(Debug, Clone)]
pub struct ViyojitConfigBuilder {
    cfg: ViyojitConfig,
    total_pages: Option<u64>,
}

impl ViyojitConfigBuilder {
    /// Sets the dirty budget in pages.
    #[must_use]
    pub fn budget_pages(mut self, pages: u64) -> Self {
        self.cfg.dirty_budget_pages = pages;
        self
    }

    /// Declares the NV-DRAM capacity so `build` can reject budgets larger
    /// than the memory they bound.
    #[must_use]
    pub fn total_pages(mut self, pages: u64) -> Self {
        self.total_pages = Some(pages);
        self
    }

    /// Sets the epoch length (§5.2).
    #[must_use]
    pub fn epoch(mut self, epoch: SimDuration) -> Self {
        self.cfg.epoch = epoch;
        self
    }

    /// Sets the outstanding-IO cap (§6.1: 16).
    #[must_use]
    pub fn max_outstanding_ios(mut self, ios: usize) -> Self {
        self.cfg.max_outstanding_ios = ios;
        self
    }

    /// Enables or disables TLB flushing on epoch walks (§6.3 ablation).
    #[must_use]
    pub fn tlb_flush_on_walk(mut self, flush: bool) -> Self {
        self.cfg.tlb_flush_on_walk = flush;
        self
    }

    /// Sets the EWMA weight of the pressure predictor (§5.3: 0.75).
    #[must_use]
    pub fn pressure_alpha(mut self, alpha: f64) -> Self {
        self.cfg.pressure_alpha = alpha;
        self
    }

    /// Sets the proactive-copy threshold policy.
    #[must_use]
    pub fn threshold_policy(mut self, policy: ThresholdPolicy) -> Self {
        self.cfg.threshold_policy = policy;
        self
    }

    /// Sets the per-page update-history depth (§5.2: 64 epochs).
    #[must_use]
    pub fn history_epochs(mut self, epochs: u32) -> Self {
        self.cfg.history_epochs = epochs;
        self
    }

    /// Sets the victim-selection policy.
    #[must_use]
    pub fn target_policy(mut self, policy: TargetPolicy) -> Self {
        self.cfg.target_policy = policy;
        self
    }

    /// Sets the copy-out payload codec (§7).
    #[must_use]
    pub fn flush_codec(mut self, codec: FlushCodec) -> Self {
        self.cfg.flush_codec = codec;
        self
    }

    /// Enables or disables sub-page sector flushing (§7).
    #[must_use]
    pub fn sector_flush(mut self, enabled: bool) -> Self {
        self.cfg.sector_flush = enabled;
        self
    }

    /// Validates every constraint and produces the configuration.
    pub fn build(self) -> Result<ViyojitConfig, ViyojitError> {
        let cfg = self.cfg;
        if cfg.dirty_budget_pages == 0 {
            return Err(ViyojitError::InvalidConfig(
                "dirty budget must allow at least one dirty page",
            ));
        }
        if let Some(total) = self.total_pages {
            if cfg.dirty_budget_pages > total {
                return Err(ViyojitError::InvalidConfig(
                    "dirty budget exceeds the total NV-DRAM pages it bounds",
                ));
            }
        }
        if cfg.epoch.is_zero() {
            return Err(ViyojitError::InvalidConfig("epoch must be positive"));
        }
        if !(cfg.pressure_alpha > 0.0 && cfg.pressure_alpha <= 1.0) {
            return Err(ViyojitError::InvalidConfig(
                "pressure alpha must be in (0,1]",
            ));
        }
        if cfg.max_outstanding_ios == 0 {
            return Err(ViyojitError::InvalidConfig(
                "at least one outstanding IO is required to flush",
            ));
        }
        if cfg.history_epochs == 0 {
            return Err(ViyojitError::InvalidConfig(
                "at least one epoch of update history is required",
            ));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use battery_sim::BatteryConfig;

    #[test]
    fn defaults_match_the_papers_evaluation_setup() {
        let cfg = ViyojitConfig::with_budget_pages(100);
        assert_eq!(cfg.epoch, SimDuration::from_millis(1));
        assert_eq!(cfg.max_outstanding_ios, 16);
        assert!(cfg.tlb_flush_on_walk);
        assert_eq!(cfg.pressure_alpha, 0.75);
        assert_eq!(cfg.threshold_policy, ThresholdPolicy::Adaptive);
        assert_eq!(cfg.history_epochs, 64);
        assert_eq!(cfg.target_policy, TargetPolicy::LeastRecentlyUpdated);
    }

    #[test]
    fn battery_derivation_produces_a_positive_budget() {
        let battery = Battery::new(BatteryConfig::with_capacity_joules(10_000.0));
        let power = PowerModel::datacenter_server(64.0);
        let cfg = ViyojitConfig::from_battery(&battery, &power, 2_000_000_000);
        assert!(cfg.dirty_budget_pages > 0);
    }

    #[test]
    #[should_panic(expected = "at least one dirty page")]
    fn zero_budget_panics() {
        let _ = ViyojitConfig::with_budget_pages(0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_panics() {
        let _ = ViyojitConfig::with_budget_pages(1).with_pressure_alpha(0.0);
    }

    #[test]
    fn builder_accepts_the_paper_defaults() {
        let built = ViyojitConfig::builder(100).build().unwrap();
        assert_eq!(built, ViyojitConfig::with_budget_pages(100));
    }

    #[test]
    fn builder_rejects_each_invalid_constraint() {
        assert!(ViyojitConfig::builder(0).build().is_err());
        assert!(ViyojitConfig::builder(100).total_pages(64).build().is_err());
        assert!(ViyojitConfig::builder(64).total_pages(64).build().is_ok());
        assert!(ViyojitConfig::builder(1)
            .epoch(SimDuration::ZERO)
            .build()
            .is_err());
        assert!(ViyojitConfig::builder(1)
            .pressure_alpha(0.0)
            .build()
            .is_err());
        assert!(ViyojitConfig::builder(1)
            .pressure_alpha(1.5)
            .build()
            .is_err());
        assert!(ViyojitConfig::builder(1)
            .pressure_alpha(f64::NAN)
            .build()
            .is_err());
        assert!(ViyojitConfig::builder(1)
            .max_outstanding_ios(0)
            .build()
            .is_err());
        assert!(ViyojitConfig::builder(1).history_epochs(0).build().is_err());
    }

    #[test]
    fn builder_errors_render_through_viyojit_error() {
        let err = ViyojitConfig::builder(0).build().unwrap_err();
        assert!(err.to_string().contains("at least one dirty page"));
    }
}
