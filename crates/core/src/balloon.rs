//! Dirty-budget ballooning across co-located tenants (§6.3's discussion).
//!
//! The paper envisions cloud providers treating battery as a first-class
//! resource: "cloud providers can employ techniques similar to memory
//! ballooning to reallocate battery/dirty-budget among co-located tenants
//! to benefit from inherent statistical multiplexing effects."
//!
//! [`BalloonedCluster`] implements that: several tenants share one
//! provisioned battery budget. The cluster is expressed on the same
//! [`BudgetTree`] hierarchy the sharded frontends plan through — each
//! balloon tenant is a single-shard tenant whose guarantee equals its
//! floor and whose burst is unbounded, which makes the tree's plan
//! algebraically identical to the historical flat
//! [`BudgetArbiter`](crate::engine::BudgetArbiter) division: budget moves
//! in proportion to each tenant's observed *demand* (write stalls and
//! fresh dirty pages since the last rebalance), subject to the floor.
//! Durability composes: every tenant enforces its own bound, and the
//! broker never hands out more than the battery covers in total.
//!
//! Since the engine unification the cluster is generic over the
//! [`DirtyTracker`] backend, so software-tracked and MMU-assisted tenants
//! balloon identically (the historical implementation was limited to the
//! software runtime, which alone exposed `set_dirty_budget`).

use telemetry::Profiler;

use crate::engine::{
    apply_budgets, BudgetTree, DirtyTracker, Engine, SoftwareWalk, TenantId, TenantQos,
};
use crate::{InvariantViolation, ViyojitError, ViyojitStats};

/// A set of Viyojit tenants multiplexing one battery's dirty budget.
///
/// # Examples
///
/// ```
/// use sim_clock::{Clock, CostModel};
/// use ssd_sim::SsdConfig;
/// use viyojit::{BalloonedCluster, NvHeap, Viyojit, ViyojitConfig};
///
/// let clock = Clock::new();
/// let make = || Viyojit::new(
///     256,
///     ViyojitConfig::with_budget_pages(1), // placeholder; broker assigns
///     clock.clone(),
///     CostModel::free(),
///     SsdConfig::instant(),
/// );
/// let mut cluster = BalloonedCluster::new(vec![make(), make()], 64, 8);
/// let t0 = cluster.tenant_mut(viyojit::TenantId(0));
/// let r = t0.map(4096 * 16)?;
/// t0.write(r, 0, b"tenant zero data")?;
/// cluster.rebalance();
/// assert_eq!(cluster.total_assigned(), 64);
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
#[derive(Debug)]
pub struct BalloonedCluster<B: DirtyTracker = SoftwareWalk> {
    tenants: Vec<Engine<B>>,
    tree: BudgetTree,
}

impl<B: DirtyTracker> BalloonedCluster<B> {
    /// Creates a cluster sharing `total_budget_pages` across `tenants`,
    /// guaranteeing each at least `min_per_tenant`. The initial division
    /// is even.
    ///
    /// # Panics
    ///
    /// Panics if there are no tenants, `min_per_tenant` is zero, or the
    /// floors alone exceed the total.
    pub fn new(tenants: Vec<Engine<B>>, total_budget_pages: u64, min_per_tenant: u64) -> Self {
        assert!(!tenants.is_empty(), "a cluster needs at least one tenant");
        assert!(min_per_tenant > 0, "tenants need at least one dirty page");
        let tree = BudgetTree::with_tenants(
            (0..tenants.len())
                .map(|i| {
                    (
                        format!("tenant{i}"),
                        1,
                        TenantQos::guaranteed(min_per_tenant),
                    )
                })
                .collect(),
            total_budget_pages,
            min_per_tenant,
        );
        let mut cluster = BalloonedCluster { tenants, tree };
        let initial = cluster.tree.initial_shares();
        for (tenant, &share) in cluster.tenants.iter_mut().zip(&initial) {
            tenant.set_dirty_budget(share);
        }
        cluster
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` if the cluster has no tenants (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The shared provisioned budget.
    pub fn total_budget_pages(&self) -> u64 {
        self.tree.total_budget_pages()
    }

    /// Sum of budgets currently assigned to tenants. Always at most
    /// [`BalloonedCluster::total_budget_pages`] after a rebalance.
    pub fn total_assigned(&self) -> u64 {
        self.tenants.iter().map(|t| t.dirty_budget()).sum()
    }

    /// Rebalances performed so far.
    pub fn rebalances(&self) -> u64 {
        self.tree.rebalances()
    }

    /// Exclusive access to one tenant.
    ///
    /// # Panics
    ///
    /// Panics if the tenant id is out of range.
    pub fn tenant_mut(&mut self, id: TenantId) -> &mut Engine<B> {
        &mut self.tenants[id.0]
    }

    /// Shared access to one tenant.
    ///
    /// # Panics
    ///
    /// Panics if the tenant id is out of range.
    pub fn tenant(&self, id: TenantId) -> &Engine<B> {
        &self.tenants[id.0]
    }

    /// Re-divides the shared budget in proportion to observed demand.
    ///
    /// Tenants whose assignment shrinks flush down synchronously (the §8
    /// machinery), so durability holds at every instant — before, during,
    /// and after the rebalance the dirty total never exceeds the battery.
    pub fn rebalance(&mut self) {
        let before: Vec<ViyojitStats> = self.tenants.iter().map(|t| t.stats()).collect();
        let targets = self.tree.plan(&before);

        // Shrink first (freeing pages), then grow, so the instantaneous
        // sum never exceeds the provisioned total.
        apply_budgets(&mut self.tenants, &targets, &Profiler::disabled(), &[]);

        // The post-apply stats become the next demand baseline: stalls
        // incurred while shrinking count toward the *next* rebalance.
        let after: Vec<ViyojitStats> = self.tenants.iter().map(|t| t.stats()).collect();
        self.tree.commit(&after);
    }

    /// Checks the cluster-wide durability invariant: assigned budgets and
    /// the dirty totals of all tenants fit the provisioned budget, and
    /// every tenant's own invariants hold.
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        self.tree.check_assignment(self.total_assigned())?;
        let dirty: u64 = self.tenants.iter().map(|t| t.dirty_count()).sum();
        if dirty > self.total_budget_pages() {
            return Err(InvariantViolation::BudgetExceeded {
                dirty,
                budget: self.total_budget_pages(),
            });
        }
        for t in &self.tenants {
            t.check_invariants()?;
        }
        Ok(())
    }

    /// Panicking wrapper over [`BalloonedCluster::check_invariants`].
    ///
    /// # Panics
    ///
    /// Panics with the violation's `Display` text if the invariant is
    /// violated.
    pub fn validate(&self) {
        if let Err(violation) = self.check_invariants() {
            panic!("{violation}");
        }
    }

    /// Consumes the cluster, returning its tenants.
    pub fn into_tenants(self) -> Vec<Engine<B>> {
        self.tenants
    }
}

/// Errors from cluster construction helpers (reserved for future use).
pub type BalloonResult<T> = Result<T, ViyojitError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MmuAssistedViyojit, NvHeap, Viyojit, ViyojitConfig};
    use sim_clock::{Clock, CostModel};
    use ssd_sim::SsdConfig;

    fn tenant(clock: &Clock) -> Viyojit {
        Viyojit::new(
            512,
            ViyojitConfig::with_budget_pages(1),
            clock.clone(),
            CostModel::free(),
            SsdConfig::instant(),
        )
    }

    fn cluster(n: usize, total: u64) -> BalloonedCluster {
        let clock = Clock::new();
        BalloonedCluster::new((0..n).map(|_| tenant(&clock)).collect(), total, 4)
    }

    #[test]
    fn initial_division_is_even_and_within_total() {
        let c = cluster(4, 64);
        assert_eq!(c.total_assigned(), 64);
        for i in 0..4 {
            assert_eq!(c.tenant(TenantId(i)).dirty_budget(), 16);
        }
        c.validate();
    }

    #[test]
    fn demand_shifts_budget_toward_the_busy_tenant() {
        let mut c = cluster(2, 64);
        let busy = TenantId(0);
        let r = c.tenant_mut(busy).map(4096 * 200).unwrap();
        // The busy tenant writes far beyond its share; the idle one sleeps.
        for page in 0..200u64 {
            c.tenant_mut(busy).write(r, page * 4096, &[1]).unwrap();
        }
        c.rebalance();
        c.validate();
        let busy_budget = c.tenant(busy).dirty_budget();
        let idle_budget = c.tenant(TenantId(1)).dirty_budget();
        assert!(
            busy_budget > idle_budget * 3,
            "busy {busy_budget} vs idle {idle_budget}"
        );
        assert_eq!(c.total_assigned(), 64);
    }

    #[test]
    fn floors_protect_idle_tenants() {
        let mut c = cluster(2, 64);
        let r = c.tenant_mut(TenantId(0)).map(4096 * 100).unwrap();
        for page in 0..100u64 {
            c.tenant_mut(TenantId(0))
                .write(r, page * 4096, &[1])
                .unwrap();
        }
        c.rebalance();
        assert!(c.tenant(TenantId(1)).dirty_budget() >= 4, "floor respected");
    }

    #[test]
    fn rebalance_with_uniform_demand_stays_even() {
        let mut c = cluster(4, 64);
        let regions: Vec<_> = (0..4)
            .map(|i| c.tenant_mut(TenantId(i)).map(4096 * 8).unwrap())
            .collect();
        for (i, &r) in regions.iter().enumerate() {
            for page in 0..8u64 {
                c.tenant_mut(TenantId(i))
                    .write(r, page * 4096, &[1])
                    .unwrap();
            }
        }
        c.rebalance();
        c.validate();
        for i in 0..4 {
            let b = c.tenant(TenantId(i)).dirty_budget();
            assert!((12..=20).contains(&b), "tenant {i} got {b}");
        }
    }

    #[test]
    fn repeated_rebalances_track_shifting_demand() {
        let mut c = cluster(2, 64);
        let r0 = c.tenant_mut(TenantId(0)).map(4096 * 120).unwrap();
        let r1 = c.tenant_mut(TenantId(1)).map(4096 * 120).unwrap();
        // Phase 1: tenant 0 busy.
        for page in 0..120u64 {
            c.tenant_mut(TenantId(0))
                .write(r0, page * 4096, &[1])
                .unwrap();
        }
        c.rebalance();
        assert!(c.tenant(TenantId(0)).dirty_budget() > c.tenant(TenantId(1)).dirty_budget());
        // Phase 2: demand flips.
        for page in 0..120u64 {
            c.tenant_mut(TenantId(1))
                .write(r1, page * 4096, &[2])
                .unwrap();
        }
        c.rebalance();
        c.validate();
        assert!(
            c.tenant(TenantId(1)).dirty_budget() > c.tenant(TenantId(0)).dirty_budget(),
            "budget must follow demand"
        );
        assert_eq!(c.rebalances(), 2);
    }

    #[test]
    fn shrinking_assignments_flush_down_preserving_durability() {
        let mut c = cluster(2, 40);
        let r0 = c.tenant_mut(TenantId(0)).map(4096 * 64).unwrap();
        // Tenant 0 fills its entire initial share with dirty pages.
        for page in 0..20u64 {
            c.tenant_mut(TenantId(0))
                .write(r0, page * 4096, &[1])
                .unwrap();
        }
        // Tenant 1 suddenly becomes the hot one.
        let r1 = c.tenant_mut(TenantId(1)).map(4096 * 64).unwrap();
        for page in 0..60u64 {
            c.tenant_mut(TenantId(1))
                .write(r1, page * 4096, &[2])
                .unwrap();
        }
        c.rebalance();
        c.validate(); // tenant 0 must have flushed down to its new share
        assert!(c.tenant(TenantId(0)).dirty_count() <= c.tenant(TenantId(0)).dirty_budget());
    }

    #[test]
    #[should_panic(expected = "floors exceed")]
    fn overcommitted_floors_panic() {
        let clock = Clock::new();
        let _ = BalloonedCluster::new(vec![tenant(&clock), tenant(&clock)], 4, 4);
    }

    #[test]
    fn mmu_assisted_tenants_balloon_too() {
        // The historical cluster required the software runtime; the
        // generic engine lets hardware-tracked tenants share a battery.
        let clock = Clock::new();
        let make = || {
            MmuAssistedViyojit::new(
                512,
                ViyojitConfig::with_budget_pages(1),
                clock.clone(),
                CostModel::free(),
                SsdConfig::instant(),
            )
        };
        let mut c = BalloonedCluster::new(vec![make(), make()], 32, 4);
        let r = c.tenant_mut(TenantId(0)).map(4096 * 64).unwrap();
        for page in 0..64u64 {
            c.tenant_mut(TenantId(0))
                .write(r, page * 4096, &[1])
                .unwrap();
        }
        c.rebalance();
        c.validate();
        assert!(c.tenant(TenantId(0)).dirty_budget() > c.tenant(TenantId(1)).dirty_budget());
        assert_eq!(c.total_assigned(), 32);
    }
}
