//! Dirty-budget ballooning across co-located tenants (§6.3's discussion).
//!
//! The paper envisions cloud providers treating battery as a first-class
//! resource: "cloud providers can employ techniques similar to memory
//! ballooning to reallocate battery/dirty-budget among co-located tenants
//! to benefit from inherent statistical multiplexing effects."
//!
//! [`BalloonedCluster`] implements that: several [`Viyojit`] tenants share
//! one provisioned battery budget. A broker periodically re-divides the
//! budget in proportion to each tenant's observed *demand* (write stalls
//! and fresh dirty pages since the last rebalance), subject to a per-tenant
//! floor. Durability composes: every tenant enforces its own bound, and
//! the broker never hands out more than the battery covers in total.

use sim_clock::SimDuration;

use crate::{Viyojit, ViyojitError};

/// Identifies a tenant within a [`BalloonedCluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub usize);

/// Demand observed for one tenant since the previous rebalance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DemandSnapshot {
    budget_stalls: u64,
    pages_dirtied: u64,
    stall_time: SimDuration,
}

/// A set of Viyojit tenants multiplexing one battery's dirty budget.
///
/// # Examples
///
/// ```
/// use sim_clock::{Clock, CostModel};
/// use ssd_sim::SsdConfig;
/// use viyojit::{BalloonedCluster, NvHeap, Viyojit, ViyojitConfig};
///
/// let clock = Clock::new();
/// let make = || Viyojit::new(
///     256,
///     ViyojitConfig::with_budget_pages(1), // placeholder; broker assigns
///     clock.clone(),
///     CostModel::free(),
///     SsdConfig::instant(),
/// );
/// let mut cluster = BalloonedCluster::new(vec![make(), make()], 64, 8);
/// let t0 = cluster.tenant_mut(viyojit::TenantId(0));
/// let r = t0.map(4096 * 16)?;
/// t0.write(r, 0, b"tenant zero data")?;
/// cluster.rebalance();
/// assert_eq!(cluster.total_assigned(), 64);
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
#[derive(Debug)]
pub struct BalloonedCluster {
    tenants: Vec<Viyojit>,
    last_seen: Vec<DemandSnapshot>,
    total_budget_pages: u64,
    min_per_tenant: u64,
    rebalances: u64,
}

impl BalloonedCluster {
    /// Creates a cluster sharing `total_budget_pages` across `tenants`,
    /// guaranteeing each at least `min_per_tenant`. The initial division
    /// is even.
    ///
    /// # Panics
    ///
    /// Panics if there are no tenants, `min_per_tenant` is zero, or the
    /// floors alone exceed the total.
    pub fn new(tenants: Vec<Viyojit>, total_budget_pages: u64, min_per_tenant: u64) -> Self {
        assert!(!tenants.is_empty(), "a cluster needs at least one tenant");
        assert!(min_per_tenant > 0, "tenants need at least one dirty page");
        assert!(
            min_per_tenant * tenants.len() as u64 <= total_budget_pages,
            "per-tenant floors exceed the provisioned budget"
        );
        let n = tenants.len();
        let mut cluster = BalloonedCluster {
            last_seen: vec![DemandSnapshot::default(); n],
            tenants,
            total_budget_pages,
            min_per_tenant,
            rebalances: 0,
        };
        let even = total_budget_pages / n as u64;
        for i in 0..n {
            cluster.tenants[i].set_dirty_budget(even.max(cluster.min_per_tenant));
        }
        cluster
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` if the cluster has no tenants (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The shared provisioned budget.
    pub fn total_budget_pages(&self) -> u64 {
        self.total_budget_pages
    }

    /// Sum of budgets currently assigned to tenants. Always at most
    /// [`BalloonedCluster::total_budget_pages`] after a rebalance.
    pub fn total_assigned(&self) -> u64 {
        self.tenants.iter().map(|t| t.dirty_budget()).sum()
    }

    /// Rebalances performed so far.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Exclusive access to one tenant.
    ///
    /// # Panics
    ///
    /// Panics if the tenant id is out of range.
    pub fn tenant_mut(&mut self, id: TenantId) -> &mut Viyojit {
        &mut self.tenants[id.0]
    }

    /// Shared access to one tenant.
    ///
    /// # Panics
    ///
    /// Panics if the tenant id is out of range.
    pub fn tenant(&self, id: TenantId) -> &Viyojit {
        &self.tenants[id.0]
    }

    /// Demand score for a tenant: stalls hurt most (a writer blocked on
    /// the SSD), dirty-page churn indicates an active write working set.
    fn demand(&self, idx: usize) -> u64 {
        let stats = self.tenants[idx].stats();
        let prev = self.last_seen[idx];
        let stalls = stats.budget_stalls - prev.budget_stalls;
        let dirtied = stats.pages_dirtied - prev.pages_dirtied;
        10 * stalls + dirtied + 1 // +1 keeps idle tenants from starving the score
    }

    /// Re-divides the shared budget in proportion to observed demand.
    ///
    /// Tenants whose assignment shrinks flush down synchronously (the §8
    /// machinery), so durability holds at every instant — before, during,
    /// and after the rebalance the dirty total never exceeds the battery.
    pub fn rebalance(&mut self) {
        let n = self.tenants.len();
        let demands: Vec<u64> = (0..n).map(|i| self.demand(i)).collect();
        let total_demand: u64 = demands.iter().sum();
        let distributable = self.total_budget_pages - self.min_per_tenant * n as u64;

        // Largest-remainder division of the distributable pages.
        let mut shares: Vec<u64> = demands
            .iter()
            .map(|&d| distributable * d / total_demand)
            .collect();
        let mut leftover = distributable - shares.iter().sum::<u64>();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(demands[i]));
        for &i in order.iter().cycle().take(leftover as usize) {
            shares[i] += 1;
            leftover -= 1;
            if leftover == 0 {
                break;
            }
        }

        // Shrink first (freeing pages), then grow, so the instantaneous
        // sum never exceeds the provisioned total.
        let targets: Vec<u64> = shares.iter().map(|s| s + self.min_per_tenant).collect();
        for (tenant, &target) in self.tenants.iter_mut().zip(&targets) {
            if target < tenant.dirty_budget() {
                tenant.set_dirty_budget(target);
            }
        }
        for (tenant, &target) in self.tenants.iter_mut().zip(&targets) {
            if target > tenant.dirty_budget() {
                tenant.set_dirty_budget(target);
            }
        }

        for i in 0..n {
            let stats = self.tenants[i].stats();
            self.last_seen[i] = DemandSnapshot {
                budget_stalls: stats.budget_stalls,
                pages_dirtied: stats.pages_dirtied,
                stall_time: stats.stall_time,
            };
        }
        self.rebalances += 1;
    }

    /// Asserts the cluster-wide durability invariant: the dirty totals of
    /// all tenants fit the provisioned budget.
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated.
    pub fn validate(&self) {
        let assigned = self.total_assigned();
        assert!(
            assigned <= self.total_budget_pages,
            "assigned budgets {assigned} exceed the provisioned {}",
            self.total_budget_pages
        );
        let dirty: u64 = self.tenants.iter().map(|t| t.dirty_count()).sum();
        assert!(
            dirty <= self.total_budget_pages,
            "cluster dirty total {dirty} exceeds the battery's {} pages",
            self.total_budget_pages
        );
        for t in &self.tenants {
            t.validate();
        }
    }

    /// Consumes the cluster, returning its tenants.
    pub fn into_tenants(self) -> Vec<Viyojit> {
        self.tenants
    }
}

/// Errors from cluster construction helpers (reserved for future use).
pub type BalloonResult<T> = Result<T, ViyojitError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NvHeap, ViyojitConfig};
    use sim_clock::{Clock, CostModel};
    use ssd_sim::SsdConfig;

    fn tenant(clock: &Clock) -> Viyojit {
        Viyojit::new(
            512,
            ViyojitConfig::with_budget_pages(1),
            clock.clone(),
            CostModel::free(),
            SsdConfig::instant(),
        )
    }

    fn cluster(n: usize, total: u64) -> BalloonedCluster {
        let clock = Clock::new();
        BalloonedCluster::new((0..n).map(|_| tenant(&clock)).collect(), total, 4)
    }

    #[test]
    fn initial_division_is_even_and_within_total() {
        let c = cluster(4, 64);
        assert_eq!(c.total_assigned(), 64);
        for i in 0..4 {
            assert_eq!(c.tenant(TenantId(i)).dirty_budget(), 16);
        }
        c.validate();
    }

    #[test]
    fn demand_shifts_budget_toward_the_busy_tenant() {
        let mut c = cluster(2, 64);
        let busy = TenantId(0);
        let r = c.tenant_mut(busy).map(4096 * 200).unwrap();
        // The busy tenant writes far beyond its share; the idle one sleeps.
        for page in 0..200u64 {
            c.tenant_mut(busy).write(r, page * 4096, &[1]).unwrap();
        }
        c.rebalance();
        c.validate();
        let busy_budget = c.tenant(busy).dirty_budget();
        let idle_budget = c.tenant(TenantId(1)).dirty_budget();
        assert!(
            busy_budget > idle_budget * 3,
            "busy {busy_budget} vs idle {idle_budget}"
        );
        assert_eq!(c.total_assigned(), 64);
    }

    #[test]
    fn floors_protect_idle_tenants() {
        let mut c = cluster(2, 64);
        let r = c.tenant_mut(TenantId(0)).map(4096 * 100).unwrap();
        for page in 0..100u64 {
            c.tenant_mut(TenantId(0))
                .write(r, page * 4096, &[1])
                .unwrap();
        }
        c.rebalance();
        assert!(c.tenant(TenantId(1)).dirty_budget() >= 4, "floor respected");
    }

    #[test]
    fn rebalance_with_uniform_demand_stays_even() {
        let mut c = cluster(4, 64);
        let regions: Vec<_> = (0..4)
            .map(|i| c.tenant_mut(TenantId(i)).map(4096 * 8).unwrap())
            .collect();
        for (i, &r) in regions.iter().enumerate() {
            for page in 0..8u64 {
                c.tenant_mut(TenantId(i))
                    .write(r, page * 4096, &[1])
                    .unwrap();
            }
        }
        c.rebalance();
        c.validate();
        for i in 0..4 {
            let b = c.tenant(TenantId(i)).dirty_budget();
            assert!((12..=20).contains(&b), "tenant {i} got {b}");
        }
    }

    #[test]
    fn repeated_rebalances_track_shifting_demand() {
        let mut c = cluster(2, 64);
        let r0 = c.tenant_mut(TenantId(0)).map(4096 * 120).unwrap();
        let r1 = c.tenant_mut(TenantId(1)).map(4096 * 120).unwrap();
        // Phase 1: tenant 0 busy.
        for page in 0..120u64 {
            c.tenant_mut(TenantId(0))
                .write(r0, page * 4096, &[1])
                .unwrap();
        }
        c.rebalance();
        assert!(c.tenant(TenantId(0)).dirty_budget() > c.tenant(TenantId(1)).dirty_budget());
        // Phase 2: demand flips.
        for page in 0..120u64 {
            c.tenant_mut(TenantId(1))
                .write(r1, page * 4096, &[2])
                .unwrap();
        }
        c.rebalance();
        c.validate();
        assert!(
            c.tenant(TenantId(1)).dirty_budget() > c.tenant(TenantId(0)).dirty_budget(),
            "budget must follow demand"
        );
        assert_eq!(c.rebalances(), 2);
    }

    #[test]
    fn shrinking_assignments_flush_down_preserving_durability() {
        let mut c = cluster(2, 40);
        let r0 = c.tenant_mut(TenantId(0)).map(4096 * 64).unwrap();
        // Tenant 0 fills its entire initial share with dirty pages.
        for page in 0..20u64 {
            c.tenant_mut(TenantId(0))
                .write(r0, page * 4096, &[1])
                .unwrap();
        }
        // Tenant 1 suddenly becomes the hot one.
        let r1 = c.tenant_mut(TenantId(1)).map(4096 * 64).unwrap();
        for page in 0..60u64 {
            c.tenant_mut(TenantId(1))
                .write(r1, page * 4096, &[2])
                .unwrap();
        }
        c.rebalance();
        c.validate(); // tenant 0 must have flushed down to its new share
        assert!(c.tenant(TenantId(0)).dirty_count() <= c.tenant(TenantId(0)).dirty_budget());
    }

    #[test]
    #[should_panic(expected = "floors exceed")]
    fn overcommitted_floors_panic() {
        let clock = Clock::new();
        let _ = BalloonedCluster::new(vec![tenant(&clock), tenant(&clock)], 4, 4);
    }
}
