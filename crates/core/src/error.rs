//! Error types of the Viyojit public API.

use std::error::Error;
use std::fmt;

use crate::RegionId;

/// Why a Viyojit operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViyojitError {
    /// `vmap` could not find a contiguous run of free NV-DRAM pages.
    OutOfSpace {
        /// Pages requested.
        requested_pages: u64,
        /// Largest contiguous free run available.
        largest_free_run: u64,
    },
    /// The region handle does not name a live mapping.
    BadRegion(RegionId),
    /// The access fell outside the region.
    OutOfRange {
        /// The offending region.
        region: RegionId,
        /// Starting byte offset of the access.
        offset: u64,
        /// Length of the access.
        len: usize,
    },
    /// A zero-length mapping was requested.
    EmptyMapping,
    /// A configuration constraint was violated (builder validation).
    InvalidConfig(&'static str),
    /// An internal invariant check failed (see
    /// [`Engine::check_invariants`](crate::Engine::check_invariants)).
    Invariant(InvariantViolation),
    /// A parallel shard thread died (panicked or disconnected); the
    /// shards it owned are no longer serviceable.
    ShardFailed {
        /// Index of the first affected shard.
        shard: usize,
    },
    /// A parallel worker failed to answer within the round deadline: it is
    /// wedged (alive but unresponsive), so the cluster aborted the round
    /// instead of blocking forever.
    RoundTimeout,
}

/// A broken internal invariant, as reported by the non-panicking
/// `check_invariants` surface on [`DirtySet`](crate::DirtySet),
/// [`Engine`](crate::Engine), and the sharded/ballooned frontends.
///
/// The paper's durability argument rests on these holding at every
/// instant; property tests call `check_invariants` after each operation
/// and the panicking `validate` wrappers turn any violation into a test
/// failure with the violation's `Display` text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantViolation {
    /// The budget-bound population exceeds the dirty budget — the core
    /// durability guarantee is broken.
    BudgetExceeded {
        /// Pages counted against the budget.
        dirty: u64,
        /// The budget in force.
        budget: u64,
    },
    /// A running counter disagrees with a recount of the per-page states.
    CounterOutOfSync {
        /// Which counter ("dirty" or "in-flight").
        counter: &'static str,
        /// Value obtained by recounting states.
        counted: u64,
        /// Value the running counter records.
        recorded: u64,
    },
    /// The pending-IO list length disagrees with the number of pages in
    /// the in-flight state.
    InFlightListMismatch {
        /// Pending flush IOs.
        ios: u64,
        /// Pages marked in flight.
        pages: u64,
    },
    /// A page's write protection disagrees with its tracked state
    /// (Fig. 6's ordering: writable ⟺ dirty).
    ProtectionMismatch {
        /// The offending page number.
        page: u64,
        /// `true` if the tracker counts the page dirty (and it should be
        /// writable); `false` if it is clean/in-flight (and protected).
        counted_dirty: bool,
    },
    /// The §5.4 hardware dirty counter disagrees with the PTE dirty bits
    /// it is defined to count.
    HardwareCounterMismatch {
        /// PTE dirty bits set.
        pte_dirty: u64,
        /// The hardware counter's value.
        counted: u64,
    },
    /// A budget arbiter handed out more pages than the shared battery
    /// provisions.
    OverCommit {
        /// Sum of budgets assigned to members.
        assigned: u64,
        /// The provisioned total.
        provisioned: u64,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::BudgetExceeded { dirty, budget } => write!(
                f,
                "durability violation: {dirty} dirty pages exceed budget {budget}"
            ),
            InvariantViolation::CounterOutOfSync {
                counter,
                counted,
                recorded,
            } => write!(
                f,
                "{counter} counter out of sync: states count {counted}, counter records {recorded}"
            ),
            InvariantViolation::InFlightListMismatch { ios, pages } => write!(
                f,
                "in-flight IO list out of sync with page states: {ios} IOs vs {pages} pages"
            ),
            InvariantViolation::ProtectionMismatch { page, counted_dirty } => {
                if *counted_dirty {
                    write!(f, "page {page} is dirty but write-protected")
                } else {
                    write!(f, "page {page} is clean/in-flight but writable")
                }
            }
            InvariantViolation::HardwareCounterMismatch { pte_dirty, counted } => write!(
                f,
                "hardware counter out of sync with PTE dirty bits: {pte_dirty} set vs {counted} counted"
            ),
            InvariantViolation::OverCommit {
                assigned,
                provisioned,
            } => write!(
                f,
                "assigned budgets {assigned} exceed the provisioned {provisioned}"
            ),
        }
    }
}

impl Error for InvariantViolation {}

impl From<InvariantViolation> for ViyojitError {
    fn from(v: InvariantViolation) -> Self {
        ViyojitError::Invariant(v)
    }
}

impl fmt::Display for ViyojitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViyojitError::OutOfSpace {
                requested_pages,
                largest_free_run,
            } => write!(
                f,
                "no contiguous run of {requested_pages} free pages (largest run: {largest_free_run})"
            ),
            ViyojitError::BadRegion(r) => write!(f, "region {r} is not mapped"),
            ViyojitError::OutOfRange { region, offset, len } => write!(
                f,
                "access of {len} bytes at offset {offset} exceeds region {region}"
            ),
            ViyojitError::EmptyMapping => write!(f, "mappings must be at least one byte"),
            ViyojitError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
            ViyojitError::Invariant(v) => write!(f, "invariant violated: {v}"),
            ViyojitError::ShardFailed { shard } => {
                write!(f, "shard {shard}'s worker thread died and cannot serve requests")
            }
            ViyojitError::RoundTimeout => {
                write!(f, "a worker thread failed to answer within the round deadline")
            }
        }
    }
}

impl Error for ViyojitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = ViyojitError::OutOfSpace {
            requested_pages: 10,
            largest_free_run: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains('3'));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ViyojitError>();
        assert_error::<InvariantViolation>();
    }

    #[test]
    fn violations_convert_into_api_errors() {
        let v = InvariantViolation::BudgetExceeded {
            dirty: 9,
            budget: 8,
        };
        let e: ViyojitError = v.into();
        assert_eq!(e, ViyojitError::Invariant(v));
        assert!(e.to_string().contains("9 dirty pages exceed budget 8"));
    }
}
