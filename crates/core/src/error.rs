//! Error types of the Viyojit public API.

use std::error::Error;
use std::fmt;

use crate::RegionId;

/// Why a Viyojit operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViyojitError {
    /// `vmap` could not find a contiguous run of free NV-DRAM pages.
    OutOfSpace {
        /// Pages requested.
        requested_pages: u64,
        /// Largest contiguous free run available.
        largest_free_run: u64,
    },
    /// The region handle does not name a live mapping.
    BadRegion(RegionId),
    /// The access fell outside the region.
    OutOfRange {
        /// The offending region.
        region: RegionId,
        /// Starting byte offset of the access.
        offset: u64,
        /// Length of the access.
        len: usize,
    },
    /// A zero-length mapping was requested.
    EmptyMapping,
    /// A configuration constraint was violated (builder validation).
    InvalidConfig(&'static str),
}

impl fmt::Display for ViyojitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViyojitError::OutOfSpace {
                requested_pages,
                largest_free_run,
            } => write!(
                f,
                "no contiguous run of {requested_pages} free pages (largest run: {largest_free_run})"
            ),
            ViyojitError::BadRegion(r) => write!(f, "region {r} is not mapped"),
            ViyojitError::OutOfRange { region, offset, len } => write!(
                f,
                "access of {len} bytes at offset {offset} exceeds region {region}"
            ),
            ViyojitError::EmptyMapping => write!(f, "mappings must be at least one byte"),
            ViyojitError::InvalidConfig(reason) => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl Error for ViyojitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = ViyojitError::OutOfSpace {
            requested_pages: 10,
            largest_free_run: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("10") && msg.contains('3'));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ViyojitError>();
    }
}
