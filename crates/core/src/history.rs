//! Per-page update-recency history (§5.2).
//!
//! Viyojit walks the page-table dirty bits of known-dirty pages at every
//! epoch boundary and stores "a history of the last 64 epochs for all the
//! pages". This module keeps that history as a lazily-shifted 64-bit mask
//! per page (bit *i* set means the page was updated *i* epochs ago), plus
//! the epoch of the most recent observed update, which drives the
//! least-recently-updated ordering.

use mem_sim::PageId;

/// Sentinel for "never updated".
const NEVER: u64 = u64::MAX;

/// Rolling per-page update history over the last `retain` epochs.
///
/// # Examples
///
/// ```
/// use mem_sim::PageId;
/// use viyojit::UpdateHistory;
///
/// let mut h = UpdateHistory::new(4, 64);
/// h.touch(PageId(1));
/// h.advance_epoch();
/// h.touch(PageId(1));
/// assert_eq!(h.update_count(PageId(1)), 2);
/// assert_eq!(h.epochs_since_update(PageId(1)), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct UpdateHistory {
    /// Update mask per page, anchored at `mask_epoch`: bit 0 = updated in
    /// epoch `mask_epoch`, bit 1 = the epoch before, ...
    masks: Vec<u64>,
    mask_epoch: Vec<u64>,
    last_update: Vec<u64>,
    /// Monotonic per-observation stamp: total order over touches, so the
    /// least-recently-updated ordering has no ties even within an epoch.
    last_seq: Vec<u64>,
    next_seq: u64,
    epoch: u64,
    retain: u32,
}

impl UpdateHistory {
    /// Creates a history over `pages` pages retaining `retain` epochs.
    ///
    /// # Panics
    ///
    /// Panics if `retain` is zero or exceeds 64.
    pub fn new(pages: usize, retain: u32) -> Self {
        assert!(
            (1..=64).contains(&retain),
            "history must retain 1..=64 epochs, got {retain}"
        );
        UpdateHistory {
            masks: vec![0; pages],
            mask_epoch: vec![0; pages],
            last_update: vec![NEVER; pages],
            last_seq: vec![0; pages],
            next_seq: 1,
            epoch: 0,
            retain,
        }
    }

    /// The current epoch index.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of epochs of history retained.
    pub fn retain_epochs(&self) -> u32 {
        self.retain
    }

    /// Moves to the next epoch. Per-page masks are shifted lazily on their
    /// next touch or query, so this is O(1).
    pub fn advance_epoch(&mut self) {
        self.epoch += 1;
    }

    /// Ages the history by `n` epochs at once — used to fast-forward
    /// across long idle gaps. O(1): masks shift lazily.
    pub fn advance_epochs(&mut self, n: u64) {
        self.epoch += n;
    }

    fn normalized_mask(&self, page: PageId) -> u64 {
        let i = page.index();
        let age = self.epoch - self.mask_epoch[i];
        let mask = if age >= 64 { 0 } else { self.masks[i] << age };
        if self.retain == 64 {
            mask
        } else {
            mask & ((1u64 << self.retain) - 1)
        }
    }

    /// Records that `page` was observed updated during the current epoch
    /// (by the fault handler on first dirty, or by the epoch walker for
    /// continued updates).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range.
    pub fn touch(&mut self, page: PageId) {
        let normalized = self.normalized_mask(page);
        let i = page.index();
        self.masks[i] = normalized | 1;
        self.mask_epoch[i] = self.epoch;
        self.last_update[i] = self.epoch;
        self.last_seq[i] = self.next_seq;
        self.next_seq += 1;
    }

    /// Monotonic stamp of the most recent observed update (0 = never).
    /// Totally ordered across all pages, so it breaks intra-epoch ties in
    /// least-recently-updated selection.
    pub fn last_touch_seq(&self, page: PageId) -> u64 {
        self.last_seq[page.index()]
    }

    /// Epoch of the most recent observed update, or `None` if the page was
    /// never updated within the program's lifetime.
    pub fn last_update_epoch(&self, page: PageId) -> Option<u64> {
        let e = self.last_update[page.index()];
        (e != NEVER).then_some(e)
    }

    /// How many epochs ago the page was last updated (0 = this epoch), or
    /// `None` if never.
    pub fn epochs_since_update(&self, page: PageId) -> Option<u64> {
        self.last_update_epoch(page).map(|e| self.epoch - e)
    }

    /// Number of distinct epochs within the retained window in which the
    /// page was updated — the page's recent write popularity.
    pub fn update_count(&self, page: PageId) -> u32 {
        self.normalized_mask(page).count_ones()
    }

    /// Resets all history (used after recovery).
    pub fn reset(&mut self) {
        self.masks.fill(0);
        self.mask_epoch.fill(0);
        self.last_update.fill(NEVER);
        self.last_seq.fill(0);
        self.next_seq = 1;
        self.epoch = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_pages_have_no_history() {
        let h = UpdateHistory::new(2, 64);
        assert_eq!(h.last_update_epoch(PageId(0)), None);
        assert_eq!(h.epochs_since_update(PageId(0)), None);
        assert_eq!(h.update_count(PageId(0)), 0);
    }

    #[test]
    fn touch_sets_current_epoch() {
        let mut h = UpdateHistory::new(2, 64);
        h.advance_epoch();
        h.advance_epoch();
        h.touch(PageId(1));
        assert_eq!(h.last_update_epoch(PageId(1)), Some(2));
        assert_eq!(h.epochs_since_update(PageId(1)), Some(0));
    }

    #[test]
    fn update_count_tracks_distinct_epochs() {
        let mut h = UpdateHistory::new(1, 64);
        for _ in 0..5 {
            h.touch(PageId(0)); // repeated touches in one epoch count once
        }
        assert_eq!(h.update_count(PageId(0)), 1);
        h.advance_epoch();
        h.touch(PageId(0));
        assert_eq!(h.update_count(PageId(0)), 2);
    }

    #[test]
    fn history_ages_out_beyond_retained_window() {
        let mut h = UpdateHistory::new(1, 8);
        h.touch(PageId(0));
        for _ in 0..7 {
            h.advance_epoch();
        }
        assert_eq!(h.update_count(PageId(0)), 1, "still inside the window");
        h.advance_epoch();
        assert_eq!(h.update_count(PageId(0)), 0, "aged out after 8 epochs");
        // last_update is lifetime information and survives the window.
        assert_eq!(h.epochs_since_update(PageId(0)), Some(8));
    }

    #[test]
    fn lazy_shift_handles_long_idle_gaps() {
        let mut h = UpdateHistory::new(1, 64);
        h.touch(PageId(0));
        for _ in 0..1_000 {
            h.advance_epoch();
        }
        assert_eq!(h.update_count(PageId(0)), 0);
        h.touch(PageId(0));
        assert_eq!(h.update_count(PageId(0)), 1);
        assert_eq!(h.epochs_since_update(PageId(0)), Some(0));
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = UpdateHistory::new(2, 64);
        h.touch(PageId(0));
        h.advance_epoch();
        h.reset();
        assert_eq!(h.current_epoch(), 0);
        assert_eq!(h.last_update_epoch(PageId(0)), None);
        assert_eq!(h.update_count(PageId(0)), 0);
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn oversized_retention_panics() {
        let _ = UpdateHistory::new(1, 65);
    }
}
