//! Copy-out target selection (§5.2).
//!
//! Viyojit chooses flush victims with a *least recently updated* policy:
//! the write-only analogue of LRU, justified by the observation that
//! NV-DRAM always retains a readable copy of every page, so only write
//! recency matters. This module implements that policy plus three
//! alternatives used by the ablation benches: least *frequently* updated
//! (popularity within the 64-epoch history window), FIFO (dirtied order),
//! and seeded-random.

use std::collections::BTreeSet;

use mem_sim::PageId;

use crate::UpdateHistory;

/// Which victim-selection policy the proactive copier uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TargetPolicy {
    /// Copy out the page whose last observed update is oldest (the paper's
    /// policy).
    #[default]
    LeastRecentlyUpdated,
    /// Copy out the page updated in the fewest epochs of the retained
    /// history window, breaking ties by recency.
    LeastFrequentlyUpdated,
    /// Copy out pages in the order they were dirtied.
    Fifo,
    /// Copy out a pseudo-random dirty page (deterministic, seeded).
    Random,
}

/// An ordered index over flushable (dirty, not in-flight) pages.
///
/// The index keeps one `u64` sort key per page, maintained incrementally:
/// `O(log n)` on dirty/touch/remove and `O(log n)` selection, so victim
/// selection never rescans the dirty set.
///
/// # Examples
///
/// ```
/// use mem_sim::PageId;
/// use viyojit::{TargetPolicy, UpdateHistory, VictimSelector};
///
/// let mut h = UpdateHistory::new(4, 64);
/// let mut sel = VictimSelector::new(4, TargetPolicy::LeastRecentlyUpdated, 1);
/// h.touch(PageId(0));
/// sel.on_dirty(PageId(0), &h);
/// h.advance_epoch();
/// h.touch(PageId(1));
/// sel.on_dirty(PageId(1), &h);
/// // Page 0 was updated longest ago.
/// assert_eq!(sel.peek(), Some(PageId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct VictimSelector {
    policy: TargetPolicy,
    ordered: BTreeSet<(u64, PageId)>,
    key_of: Vec<Option<u64>>,
    fifo_seq: u64,
    rng_state: u64,
}

impl VictimSelector {
    /// Creates a selector over `pages` pages with the given policy. `seed`
    /// only affects [`TargetPolicy::Random`].
    pub fn new(pages: usize, policy: TargetPolicy, seed: u64) -> Self {
        VictimSelector {
            policy,
            ordered: BTreeSet::new(),
            key_of: vec![None; pages],
            fifo_seq: 0,
            rng_state: seed | 1,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> TargetPolicy {
        self.policy
    }

    /// Number of candidate pages currently indexed.
    pub fn len(&self) -> usize {
        self.ordered.len()
    }

    /// `true` if no candidates are indexed.
    pub fn is_empty(&self) -> bool {
        self.ordered.is_empty()
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*: deterministic, seed-stable victim randomization.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn key(&mut self, page: PageId, history: &UpdateHistory) -> u64 {
        match self.policy {
            TargetPolicy::LeastRecentlyUpdated => history.last_touch_seq(page),
            TargetPolicy::LeastFrequentlyUpdated => {
                let popularity = history.update_count(page) as u64;
                let recency = history.last_touch_seq(page) & ((1 << 56) - 1);
                (popularity << 56) | recency
            }
            TargetPolicy::Fifo => {
                self.fifo_seq += 1;
                self.fifo_seq
            }
            TargetPolicy::Random => self.next_random(),
        }
    }

    /// Indexes a page that just became flushable (entered the `Dirty`
    /// state).
    ///
    /// # Panics
    ///
    /// Panics if the page is already indexed.
    pub fn on_dirty(&mut self, page: PageId, history: &UpdateHistory) {
        assert!(
            self.key_of[page.index()].is_none(),
            "{page} indexed twice by the victim selector"
        );
        let key = self.key(page, history);
        self.ordered.insert((key, page));
        self.key_of[page.index()] = Some(key);
    }

    /// Re-keys a page after the epoch walker observed a fresh update.
    /// No-op for policies whose key does not depend on update history, or
    /// if the page is not indexed.
    pub fn on_touch(&mut self, page: PageId, history: &UpdateHistory) {
        let Some(old_key) = self.key_of[page.index()] else {
            return;
        };
        match self.policy {
            TargetPolicy::Fifo | TargetPolicy::Random => return,
            TargetPolicy::LeastRecentlyUpdated | TargetPolicy::LeastFrequentlyUpdated => {}
        }
        self.ordered.remove(&(old_key, page));
        let key = self.key(page, history);
        self.ordered.insert((key, page));
        self.key_of[page.index()] = Some(key);
    }

    /// Removes a page from the index (flush issued, or page unmapped).
    /// No-op if the page is not indexed.
    pub fn on_removed(&mut self, page: PageId) {
        if let Some(key) = self.key_of[page.index()].take() {
            self.ordered.remove(&(key, page));
        }
    }

    /// The current best victim without removing it.
    pub fn peek(&self) -> Option<PageId> {
        self.ordered.first().map(|&(_, p)| p)
    }

    /// Clears the index (recovery).
    pub fn reset(&mut self) {
        self.ordered.clear();
        self.key_of.fill(None);
        self.fifo_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru_setup() -> (UpdateHistory, VictimSelector) {
        (
            UpdateHistory::new(8, 64),
            VictimSelector::new(8, TargetPolicy::LeastRecentlyUpdated, 42),
        )
    }

    #[test]
    fn lru_prefers_oldest_update() {
        let (mut h, mut s) = lru_setup();
        for i in 0..3u64 {
            h.touch(PageId(i));
            s.on_dirty(PageId(i), &h);
            h.advance_epoch();
        }
        assert_eq!(s.peek(), Some(PageId(0)));
        // Touching page 0 again makes page 1 the oldest.
        h.touch(PageId(0));
        s.on_touch(PageId(0), &h);
        assert_eq!(s.peek(), Some(PageId(1)));
    }

    #[test]
    fn removed_pages_stop_being_candidates() {
        let (mut h, mut s) = lru_setup();
        h.touch(PageId(0));
        s.on_dirty(PageId(0), &h);
        h.touch(PageId(1));
        s.on_dirty(PageId(1), &h);
        s.on_removed(PageId(0));
        assert_eq!(s.peek(), Some(PageId(1)));
        s.on_removed(PageId(1));
        assert!(s.peek().is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn lfu_prefers_least_popular() {
        let mut h = UpdateHistory::new(4, 64);
        let mut s = VictimSelector::new(4, TargetPolicy::LeastFrequentlyUpdated, 1);
        // Page 0: updated in 3 epochs. Page 1: updated in 1 epoch (latest).
        h.touch(PageId(0));
        h.advance_epoch();
        h.touch(PageId(0));
        h.advance_epoch();
        h.touch(PageId(0));
        h.touch(PageId(1));
        s.on_dirty(PageId(0), &h);
        s.on_dirty(PageId(1), &h);
        assert_eq!(s.peek(), Some(PageId(1)));
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut h = UpdateHistory::new(4, 64);
        let mut s = VictimSelector::new(4, TargetPolicy::Fifo, 1);
        h.touch(PageId(2));
        s.on_dirty(PageId(2), &h);
        h.advance_epoch();
        h.touch(PageId(3));
        s.on_dirty(PageId(3), &h);
        // Page 2 is touched again, but FIFO still evicts it first.
        h.touch(PageId(2));
        s.on_touch(PageId(2), &h);
        assert_eq!(s.peek(), Some(PageId(2)));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let order = |seed: u64| {
            let mut h = UpdateHistory::new(8, 64);
            let mut s = VictimSelector::new(8, TargetPolicy::Random, seed);
            for i in 0..8u64 {
                h.touch(PageId(i));
                s.on_dirty(PageId(i), &h);
            }
            let mut out = Vec::new();
            while let Some(p) = s.peek() {
                out.push(p);
                s.on_removed(p);
            }
            out
        };
        assert_eq!(order(7), order(7), "same seed, same order");
        assert_ne!(order(7), order(8), "different seeds diverge");
    }

    #[test]
    #[should_panic(expected = "indexed twice")]
    fn double_indexing_panics() {
        let (h, mut s) = lru_setup();
        s.on_dirty(PageId(0), &h);
        s.on_dirty(PageId(0), &h);
    }

    #[test]
    fn on_touch_of_unindexed_page_is_a_no_op() {
        let (mut h, mut s) = lru_setup();
        h.touch(PageId(5));
        s.on_touch(PageId(5), &h);
        assert!(s.is_empty());
    }
}
