//! Copy-out payload reduction (§7): "The write bandwidth to secondary
//! storage could be further reduced by using compression and
//! de-duplication."
//!
//! [`FlushCodec`] selects what the copier does to a page snapshot before
//! handing it to the SSD. Compression is a real (if simple) byte-level
//! run-length scheme with a working decoder — the encoded length is what
//! the SSD is charged for. Deduplication keeps a content-hash table of
//! pages already durable; a duplicate page costs only a reference record.
//!
//! The simulated SSD always stores the full logical snapshot, so the
//! codec affects *accounting* (bandwidth, wear, battery energy) and never
//! data correctness; a production dedup store would add reference
//! counting and hash-collision verification on top.

use mem_sim::PAGE_SIZE;

/// What the copier does to page payloads before the SSD write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FlushCodec {
    /// Write full 4 KiB pages (the paper's system).
    #[default]
    Raw,
    /// Run-length compress each page; the SSD is charged the encoded size.
    Rle,
    /// RLE plus content-hash deduplication: a page whose content is
    /// already durable anywhere on the device costs one reference record.
    RleDedup,
}

/// Size in bytes of a dedup reference record (hash + page id).
pub(crate) const DEDUP_RECORD_BYTES: usize = 16;

/// Run-length encodes `data`: each run becomes `(len-1) byte, value byte`.
/// Worst case doubles the input; page payloads cap at `PAGE_SIZE` anyway
/// because the copier falls back to raw for incompressible pages.
///
/// # Examples
///
/// ```
/// use viyojit::{rle_decode, rle_encode};
///
/// let data = [7u8, 7, 7, 7, 0, 0, 9];
/// let encoded = rle_encode(&data);
/// assert!(encoded.len() < data.len());
/// assert_eq!(rle_decode(&encoded, data.len()), data);
/// ```
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4);
    let mut i = 0;
    while i < data.len() {
        let value = data[i];
        let mut run = 1usize;
        while run < 256 && i + run < data.len() && data[i + run] == value {
            run += 1;
        }
        out.push((run - 1) as u8);
        out.push(value);
        i += run;
    }
    out
}

/// Decodes [`rle_encode`] output into exactly `len` bytes.
///
/// # Panics
///
/// Panics if `encoded` is malformed or does not decode to `len` bytes.
pub fn rle_decode(encoded: &[u8], len: usize) -> Vec<u8> {
    assert!(
        encoded.len().is_multiple_of(2),
        "RLE stream must be (len, value) pairs"
    );
    let mut out = Vec::with_capacity(len);
    for pair in encoded.chunks_exact(2) {
        let run = pair[0] as usize + 1;
        out.extend(std::iter::repeat_n(pair[1], run));
    }
    assert_eq!(out.len(), len, "RLE stream decoded to the wrong length");
    out
}

/// The physical bytes a page flush costs under `codec` — raw pages never
/// cost more than `PAGE_SIZE` because incompressible payloads fall back
/// to raw.
pub(crate) fn encoded_page_bytes(codec: FlushCodec, data: &[u8]) -> usize {
    match codec {
        FlushCodec::Raw => PAGE_SIZE,
        FlushCodec::Rle | FlushCodec::RleDedup => rle_encode(data).len().min(PAGE_SIZE),
    }
}

/// FNV-1a over a whole page, for dedup content addressing.
pub(crate) fn page_content_hash(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_round_trips_structured_data() {
        let mut page = vec![0u8; PAGE_SIZE];
        page[100..200].fill(0xAB);
        page[4000..4096].fill(0x01);
        let encoded = rle_encode(&page);
        assert!(encoded.len() < 64, "mostly-zero page compresses hard");
        assert_eq!(rle_decode(&encoded, PAGE_SIZE), page);
    }

    #[test]
    fn rle_round_trips_worst_case_data() {
        let noisy: Vec<u8> = (0..PAGE_SIZE).map(|i| (i * 131 % 251) as u8).collect();
        let encoded = rle_encode(&noisy);
        assert_eq!(rle_decode(&encoded, PAGE_SIZE), noisy);
        assert!(encoded.len() >= PAGE_SIZE, "no free lunch on noise");
        // ... which is why the copier caps the charge at PAGE_SIZE.
        assert_eq!(encoded_page_bytes(FlushCodec::Rle, &noisy), PAGE_SIZE);
    }

    #[test]
    fn rle_handles_long_runs_and_empty_input() {
        let long = vec![5u8; 1000];
        assert_eq!(rle_decode(&rle_encode(&long), 1000), long);
        assert!(rle_encode(&[]).is_empty());
        assert!(rle_decode(&[], 0).is_empty());
    }

    #[test]
    fn encoded_bytes_depend_on_codec() {
        let zeros = vec![0u8; PAGE_SIZE];
        assert_eq!(encoded_page_bytes(FlushCodec::Raw, &zeros), PAGE_SIZE);
        assert!(encoded_page_bytes(FlushCodec::Rle, &zeros) < 64);
    }

    #[test]
    fn content_hash_distinguishes_pages() {
        let a = vec![1u8; PAGE_SIZE];
        let mut b = a.clone();
        b[4095] = 2;
        assert_ne!(page_content_hash(&a), page_content_hash(&b));
        assert_eq!(page_content_hash(&a), page_content_hash(&a.clone()));
    }
}
