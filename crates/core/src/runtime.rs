//! The Viyojit manager: dirty-budget enforcement (Fig. 6), epoch-based
//! recency tracking, proactive copying, power failure, and recovery.
//!
//! The control loop itself lives in the backend-generic
//! [`Engine`](crate::Engine) (see [`crate::engine`]); this module keeps
//! the software manager's public name and the [`PowerFailureReport`]
//! durability surface.

use battery_sim::{Battery, PowerModel};
use sim_clock::SimDuration;

use crate::engine::{Engine, SoftwareWalk};

/// Outcome of a simulated power failure: what the battery had to flush.
///
/// # Examples
///
/// ```
/// use battery_sim::{Battery, BatteryConfig, PowerModel};
/// use sim_clock::{Clock, CostModel};
/// use ssd_sim::SsdConfig;
/// use viyojit::{NvHeap, Viyojit, ViyojitConfig};
///
/// let mut v = Viyojit::new(
///     64,
///     ViyojitConfig::with_budget_pages(4),
///     Clock::new(),
///     CostModel::free(),
///     SsdConfig::datacenter(),
/// );
/// let r = v.map(4096 * 16)?;
/// v.write(r, 0, b"critical data")?;
/// let report = v.power_failure();
/// assert!(report.dirty_pages <= 4, "never more dirty pages than budget");
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerFailureReport {
    /// Pages that were inconsistent with the SSD at the failure instant.
    pub dirty_pages: u64,
    /// Bytes flushed on battery power.
    pub bytes_flushed: u64,
    /// Time the flush held the system up, at conservative sequential
    /// bandwidth (§5.1).
    pub flush_time: SimDuration,
}

impl PowerFailureReport {
    /// Energy the flush drew at the given system power.
    pub fn energy_needed_joules(&self, power: &PowerModel) -> f64 {
        self.flush_time.as_secs_f64() * power.total_watts()
    }

    /// `true` if the provisioned battery could power the flush — the
    /// durability guarantee of §4.1.
    pub fn survives(&self, battery: &Battery, power: &PowerModel) -> bool {
        self.energy_needed_joules(power) <= battery.effective_joules()
    }
}

/// The Viyojit NV-DRAM manager (the paper's primary contribution).
///
/// `Viyojit` presents the full NV-DRAM capacity through the mmap-like
/// [`NvHeap`](crate::NvHeap) API while guaranteeing that at most
/// [`ViyojitConfig::dirty_budget_pages`](crate::ViyojitConfig) pages are
/// ever inconsistent with the backing SSD, so a battery sized for the
/// *budget* — not the DRAM — suffices for durability.
///
/// Mechanics (paper §5):
/// - every mapped page starts write-protected; the first write faults and
///   the handler adds the page to the dirty set (Fig. 6),
/// - if the budget is full the writer stalls while a least-recently-updated
///   victim is copied out,
/// - a per-epoch walker samples and clears PTE dirty bits (flushing the TLB
///   for exactness) to maintain update recency, feeds an EWMA predictor of
///   dirty-page pressure, and proactively copies cold pages so writers
///   rarely stall.
///
/// Since the engine unification this is [`Engine`] instantiated with the
/// [`SoftwareWalk`] backend; the hardware-assisted
/// [`MmuAssistedViyojit`](crate::MmuAssistedViyojit) shares every line of
/// the control loop and differs only in how dirtiness is observed.
///
/// # Examples
///
/// See [`NvHeap`](crate::NvHeap) for the write/read surface and
/// [`Engine::power_failure`] for the durability path.
pub type Viyojit = Engine<SoftwareWalk>;
