//! The Viyojit manager: dirty-budget enforcement (Fig. 6), epoch-based
//! recency tracking, proactive copying, power failure, and recovery.

use battery_sim::{Battery, PowerModel};
use mem_sim::{AccessError, Mmu, MmuStats, PageId, TlbStats, WalkOptions, PAGE_SIZE};
use sim_clock::{Clock, CostModel, SimDuration, SimTime};
use ssd_sim::{Ssd, SsdConfig, SsdStats};
use telemetry::{FlushReason, Telemetry, TraceEvent};

use crate::codec::{encoded_page_bytes, page_content_hash, DEDUP_RECORD_BYTES};
use crate::{
    DirtySet, FlushCodec, NvHeap, PageState, PressureEstimator, RegionId, RegionInfo, RegionTable,
    UpdateHistory, VictimSelector, ViyojitConfig, ViyojitError, ViyojitStats,
};

/// Outcome of a simulated power failure: what the battery had to flush.
///
/// # Examples
///
/// ```
/// use battery_sim::{Battery, BatteryConfig, PowerModel};
/// use sim_clock::{Clock, CostModel};
/// use ssd_sim::SsdConfig;
/// use viyojit::{NvHeap, Viyojit, ViyojitConfig};
///
/// let mut v = Viyojit::new(
///     64,
///     ViyojitConfig::with_budget_pages(4),
///     Clock::new(),
///     CostModel::free(),
///     SsdConfig::datacenter(),
/// );
/// let r = v.map(4096 * 16)?;
/// v.write(r, 0, b"critical data")?;
/// let report = v.power_failure();
/// assert!(report.dirty_pages <= 4, "never more dirty pages than budget");
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerFailureReport {
    /// Pages that were inconsistent with the SSD at the failure instant.
    pub dirty_pages: u64,
    /// Bytes flushed on battery power.
    pub bytes_flushed: u64,
    /// Time the flush held the system up, at conservative sequential
    /// bandwidth (§5.1).
    pub flush_time: SimDuration,
}

impl PowerFailureReport {
    /// Energy the flush drew at the given system power.
    pub fn energy_needed_joules(&self, power: &PowerModel) -> f64 {
        self.flush_time.as_secs_f64() * power.total_watts()
    }

    /// `true` if the provisioned battery could power the flush — the
    /// durability guarantee of §4.1.
    pub fn survives(&self, battery: &Battery, power: &PowerModel) -> bool {
        self.energy_needed_joules(power) <= battery.effective_joules()
    }
}

/// The Viyojit NV-DRAM manager (the paper's primary contribution).
///
/// `Viyojit` presents the full NV-DRAM capacity through the mmap-like
/// [`NvHeap`] API while guaranteeing that at most
/// [`ViyojitConfig::dirty_budget_pages`] pages are ever inconsistent with
/// the backing SSD, so a battery sized for the *budget* — not the DRAM —
/// suffices for durability.
///
/// Mechanics (paper §5):
/// - every mapped page starts write-protected; the first write faults and
///   the handler adds the page to the dirty set (Fig. 6),
/// - if the budget is full the writer stalls while a least-recently-updated
///   victim is copied out,
/// - a per-epoch walker samples and clears PTE dirty bits (flushing the TLB
///   for exactness) to maintain update recency, feeds an EWMA predictor of
///   dirty-page pressure, and proactively copies cold pages so writers
///   rarely stall.
///
/// # Examples
///
/// See [`NvHeap`] for the write/read surface and
/// [`Viyojit::power_failure`] for the durability path.
#[derive(Debug)]
pub struct Viyojit {
    config: ViyojitConfig,
    clock: Clock,
    mmu: Mmu,
    ssd: Ssd,
    regions: RegionTable,
    dirty: DirtySet,
    history: UpdateHistory,
    selector: VictimSelector,
    pressure: PressureEstimator,
    /// Pending flush IOs as `(completion instant, page)`.
    inflight: Vec<(SimTime, PageId)>,
    /// Content hashes of pages durable on the SSD (dedup codec only).
    dedup_hashes: std::collections::HashSet<u64>,
    new_dirty_this_epoch: u64,
    next_epoch_at: SimTime,
    /// Proactive-copy threshold computed at the last epoch boundary; the
    /// background copier tops up toward it continuously between epochs.
    current_threshold: u64,
    stats: ViyojitStats,
    telemetry: Telemetry,
}

impl Viyojit {
    /// Creates a manager over `total_pages` of NV-DRAM backed by an SSD of
    /// the same capacity. All pages are write-protected at startup (Fig. 6
    /// step 1).
    pub fn new(
        total_pages: usize,
        config: ViyojitConfig,
        clock: Clock,
        costs: CostModel,
        ssd_config: SsdConfig,
    ) -> Self {
        let mut mmu = Mmu::new(total_pages, clock.clone(), costs);
        for i in 0..total_pages {
            mmu.protect_page(PageId(i as u64));
        }
        let ssd = Ssd::new(total_pages, ssd_config, clock.clone());
        let next_epoch_at = clock.now() + config.epoch;
        Viyojit {
            dirty: DirtySet::new(total_pages),
            history: UpdateHistory::new(total_pages, config.history_epochs),
            selector: VictimSelector::new(total_pages, config.target_policy, 0x5eed),
            pressure: PressureEstimator::new(config.pressure_alpha),
            regions: RegionTable::new(total_pages as u64),
            inflight: Vec::new(),
            dedup_hashes: std::collections::HashSet::new(),
            new_dirty_this_epoch: 0,
            next_epoch_at,
            current_threshold: config.dirty_budget_pages,
            stats: ViyojitStats::default(),
            telemetry: Telemetry::disabled(),
            config,
            clock,
            mmu,
            ssd,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ViyojitConfig {
        &self.config
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Pages currently counted against the dirty budget.
    pub fn dirty_count(&self) -> u64 {
        self.dirty.dirty_count()
    }

    /// The dirty budget in pages.
    pub fn dirty_budget(&self) -> u64 {
        self.config.dirty_budget_pages
    }

    /// Runtime counters.
    pub fn stats(&self) -> ViyojitStats {
        self.stats
    }

    /// MMU access counters.
    pub fn mmu_stats(&self) -> MmuStats {
        self.mmu.stats()
    }

    /// TLB counters.
    pub fn tlb_stats(&self) -> TlbStats {
        self.mmu.tlb_stats()
    }

    /// SSD counters (copy-out traffic; Fig. 9's write rate comes from
    /// `bytes_written`).
    pub fn ssd_stats(&self) -> SsdStats {
        self.ssd.stats()
    }

    /// The backing SSD (wear statistics, configuration).
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Attaches a telemetry handle (shared with the backing SSD). The
    /// manager then emits the Fig. 6 trace events and publishes its
    /// counters into the registry at every epoch boundary. Telemetry only
    /// observes the virtual clock, so results are identical with any sink.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.ssd.attach_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Publishes runtime counters, pressure state, and SSD state into the
    /// attached metrics registry. No-op when telemetry is disabled.
    fn publish_metrics(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let stats = self.stats;
        let dirty = self.dirty.dirty_count();
        let in_flight = self.dirty.in_flight_count();
        let threshold = self.current_threshold;
        let predicted = self.pressure.predicted();
        self.telemetry.metrics(|m| {
            m.counter_set("viyojit.faults_handled", stats.faults_handled);
            m.counter_set("viyojit.pages_dirtied", stats.pages_dirtied);
            m.counter_set("viyojit.proactive_flushes", stats.proactive_flushes);
            m.counter_set("viyojit.forced_flushes", stats.forced_flushes);
            m.counter_set("viyojit.flushes_completed", stats.flushes_completed);
            m.counter_set("viyojit.budget_stalls", stats.budget_stalls);
            m.counter_set("viyojit.stall_nanos", stats.stall_time.as_nanos());
            m.counter_set("viyojit.in_flight_collisions", stats.in_flight_collisions);
            m.counter_set("viyojit.epochs", stats.epochs);
            m.counter_set("viyojit.bytes_flushed", stats.bytes_flushed);
            m.counter_set(
                "viyojit.physical_bytes_flushed",
                stats.physical_bytes_flushed,
            );
            m.counter_set("viyojit.walk_touches", stats.walk_touches);
            m.gauge_set("viyojit.dirty_pages", dirty as f64);
            m.gauge_set("viyojit.in_flight_pages", in_flight as f64);
            m.gauge_set("viyojit.proactive_threshold", threshold as f64);
            m.gauge_set("viyojit.predicted_pressure", predicted);
        });
        self.ssd.publish_metrics();
    }

    /// Live regions.
    pub fn regions(&self) -> impl Iterator<Item = (RegionId, RegionInfo)> + '_ {
        self.regions.iter()
    }

    // ------------------------------------------------------------------
    // Epochs, completions, proactive copying
    // ------------------------------------------------------------------

    /// Retires every flush IO whose completion instant has passed, moving
    /// its page clean and releasing its budget slot.
    fn retire_completions(&mut self) {
        let now = self.clock.now();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].0 <= now {
                let (_, page) = self.inflight.swap_remove(i);
                self.dirty.mark_clean(page);
                self.stats.flushes_completed += 1;
                self.telemetry
                    .emit(|| TraceEvent::FlushComplete { page: page.0 });
            } else {
                i += 1;
            }
        }
    }

    /// Processes any epoch boundaries the virtual clock has crossed.
    /// Called from every read/write; cheap when nothing is pending.
    ///
    /// Proactive copies are issued only at epoch boundaries, as in the
    /// paper (§5.3 is explicitly "an epoch based approach"); the EWMA
    /// threshold exists precisely to leave enough budget slack to absorb
    /// the new dirty pages that arrive *between* boundaries.
    fn poll(&mut self) {
        self.retire_completions();
        let now = self.clock.now();
        if now < self.next_epoch_at {
            return;
        }
        // Fast-forward long idle gaps. Only the first epoch after the gap
        // observes new dirty bits, and the copier needs at most
        // budget/outstanding epochs to drain to its threshold, so epochs
        // beyond `cap` before "now" are no-ops: age the recency history in
        // one step and let the pressure prediction decay to zero, exactly
        // as processing them individually would.
        let pending = (now - self.next_epoch_at).as_nanos() / self.config.epoch.as_nanos() + 1;
        let cap = self.config.history_epochs as u64
            + self.config.dirty_budget_pages / self.config.max_outstanding_ios as u64
            + 2;
        if pending > cap {
            let skipped = pending - cap;
            self.history.advance_epochs(skipped);
            self.pressure.reset();
            self.new_dirty_this_epoch = 0;
            self.next_epoch_at += self.config.epoch * skipped;
            self.stats.epochs_fast_forwarded += skipped;
        }
        while self.clock.now() >= self.next_epoch_at {
            self.run_epoch();
            self.next_epoch_at += self.config.epoch;
        }
    }

    /// Issues proactive copies until the not-yet-flushing dirty population
    /// is at most `threshold` or the outstanding-IO cap is reached.
    fn issue_proactive_down_to(&mut self, threshold: u64) {
        while self.dirty.dirty_count() - self.dirty.in_flight_count() > threshold
            && self.inflight.len() < self.config.max_outstanding_ios
        {
            let Some(victim) = self.selector.peek() else {
                break; // everything dirty is already in flight
            };
            self.issue_flush(victim, FlushReason::Proactive);
        }
    }

    /// One epoch boundary (§5.2 + §5.3): walk dirty bits, refresh recency,
    /// update pressure, and issue proactive copies down to the threshold.
    fn run_epoch(&mut self) {
        self.stats.epochs += 1;
        self.history.advance_epoch();
        let epoch = self.history.current_epoch();

        let walk_set: Vec<PageId> = self.dirty.iter_dirty().collect();
        let options = WalkOptions {
            flush_tlb: self.config.tlb_flush_on_walk,
            charge_costs: false, // the walker runs off the app's critical path
        };
        for page in self.mmu.walk_and_clear_dirty(&walk_set, options) {
            self.history.touch(page);
            self.selector.on_touch(page, &self.history);
            self.stats.walk_touches += 1;
        }
        self.telemetry.emit(|| TraceEvent::EpochWalk {
            epoch,
            walked: walk_set.len() as u64,
            new_dirty: self.new_dirty_this_epoch,
        });
        if self.config.tlb_flush_on_walk {
            self.telemetry.emit(|| TraceEvent::TlbFlush { epoch });
        }

        self.pressure.observe(self.new_dirty_this_epoch);
        self.new_dirty_this_epoch = 0;
        self.current_threshold = match self.config.threshold_policy {
            crate::ThresholdPolicy::Adaptive => {
                self.pressure.threshold(self.config.dirty_budget_pages)
            }
            crate::ThresholdPolicy::FixedSlack(slack) => {
                self.config.dirty_budget_pages.saturating_sub(slack)
            }
        };

        self.retire_completions();
        // Issue enough copies that, once in-flight IOs drain, the dirty
        // population sits at the threshold. In-flight pages still count
        // against the budget (their bytes are not durable yet) but need no
        // further action, so the copier compares the not-yet-flushing
        // population to the threshold.
        self.issue_proactive_down_to(self.current_threshold);
        self.publish_metrics();
        self.telemetry.snapshot_epoch(epoch);
    }

    /// Re-protects `victim`, snapshots it, and submits its flush (Fig. 6
    /// steps 6-7). Write-protecting *before* the SSD write is what makes
    /// the snapshot safe against concurrent updates (§5.1).
    fn issue_flush(&mut self, victim: PageId, reason: FlushReason) {
        self.telemetry.emit(|| TraceEvent::FlushIssued {
            page: victim.0,
            reason,
            last_update_epoch: self.history.last_update_epoch(victim),
        });
        self.mmu.protect_page(victim);
        // Clear the PTE dirty bit so post-flush tracking starts clean; the
        // protect above already invalidated the TLB entry.
        self.mmu
            .walk_and_clear_dirty(&[victim], WalkOptions::stale());
        self.dirty.mark_in_flight(victim);
        self.selector.on_removed(victim);
        let data = self.mmu.page_data(victim).to_vec();
        let physical = self.physical_flush_bytes(victim, &data);
        self.mmu.clear_sector_mask(victim);
        let done = self.ssd.submit_write_sized(victim, &data, physical);
        self.inflight.push((done, victim));
        self.stats.bytes_flushed += PAGE_SIZE as u64;
        self.stats.physical_bytes_flushed += physical as u64;
        match reason {
            FlushReason::Proactive => self.stats.proactive_flushes += 1,
            FlushReason::Forced => self.stats.forced_flushes += 1,
        }
    }

    /// The physical payload one page flush costs under the configured §7
    /// reductions: sector-granular shipping (when a durable base exists to
    /// patch), compression, or a dedup reference when the whole content is
    /// already durable. When both sector flushing and a codec are enabled,
    /// the cheaper of the two applies.
    fn physical_flush_bytes(&mut self, page: PageId, data: &[u8]) -> usize {
        let codec_bytes = match self.config.flush_codec {
            FlushCodec::Raw => PAGE_SIZE,
            FlushCodec::Rle => encoded_page_bytes(FlushCodec::Rle, data),
            FlushCodec::RleDedup => {
                let hash = page_content_hash(data);
                if self.dedup_hashes.insert(hash) {
                    encoded_page_bytes(FlushCodec::Rle, data)
                } else {
                    DEDUP_RECORD_BYTES
                }
            }
        };
        if self.config.sector_flush && self.ssd.contains(page) {
            // Clean sectors already match the durable base copy, so only
            // the modified sectors (plus an 8 B mask) need shipping.
            let sector_bytes = self.mmu.dirty_sector_bytes(page) + 8;
            codec_bytes.min(sector_bytes.min(PAGE_SIZE))
        } else {
            codec_bytes
        }
    }

    /// Stalls (advancing the virtual clock through SSD completions) until
    /// at most `limit` pages are counted dirty, issuing forced flushes as
    /// needed.
    fn stall_until_dirty_at_most(&mut self, limit: u64) {
        let mut stalled = false;
        while self.dirty.dirty_count() > limit {
            if self.inflight.is_empty() {
                let victim = self
                    .selector
                    .peek()
                    .expect("dirty pages exceed the limit but none are flushable or in flight");
                self.issue_flush(victim, FlushReason::Forced);
            }
            let earliest = self
                .inflight
                .iter()
                .map(|&(t, _)| t)
                .min()
                .expect("at least one IO in flight");
            let before = self.clock.now();
            self.clock.advance_to(earliest);
            self.stats.stall_time += self.clock.now().saturating_since(before);
            if !stalled {
                self.stats.budget_stalls += 1;
                stalled = true;
                self.telemetry.emit(|| TraceEvent::BudgetStall {
                    dirty: self.dirty.dirty_count(),
                    budget: limit,
                });
            }
            self.retire_completions();
        }
    }

    /// The write-protection fault handler (Fig. 6 steps 3-8).
    fn handle_fault(&mut self, page: PageId) {
        self.stats.faults_handled += 1;
        self.telemetry
            .emit(|| TraceEvent::WriteFault { page: page.0 });
        self.retire_completions();

        if self.dirty.state(page) == PageState::InFlight {
            // The page is mid-flush; wait for its IO so the clean snapshot
            // is durable before the page is re-dirtied.
            self.stats.in_flight_collisions += 1;
            let done = self
                .inflight
                .iter()
                .find(|&&(_, p)| p == page)
                .map(|&(t, _)| t)
                .expect("in-flight page has a pending IO");
            self.clock.advance_to(done);
            self.retire_completions();
        }
        debug_assert_eq!(self.dirty.state(page), PageState::Clean);

        // Step 5: admitting this page must keep the count within budget.
        self.stall_until_dirty_at_most(self.config.dirty_budget_pages - 1);

        // Step 8: unprotect, count, record.
        self.mmu.unprotect_page(page);
        self.dirty.mark_dirty(page);
        self.history.touch(page);
        self.selector.on_dirty(page, &self.history);
        self.new_dirty_this_epoch += 1;
        self.stats.pages_dirtied += 1;
    }

    // ------------------------------------------------------------------
    // Runtime budget tuning (§8)
    // ------------------------------------------------------------------

    /// Re-derives the dirty budget at runtime — e.g. after a battery cell
    /// failure shrank the available energy (§8). If the dirty population
    /// exceeds the new budget, the caller stalls while pages are flushed
    /// down to it, preserving durability throughout.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn set_dirty_budget(&mut self, pages: u64) {
        assert!(pages > 0, "dirty budget must allow at least one dirty page");
        // The manager only sees the derived budget; health is reported by
        // whoever derived it (the battery governor), so 1000 here means
        // "not re-measured at this hook".
        self.telemetry.emit(|| TraceEvent::BatteryRecalc {
            budget_pages: pages,
            health_permille: 1000,
        });
        self.config.dirty_budget_pages = pages;
        self.stall_until_dirty_at_most(pages);
    }

    // ------------------------------------------------------------------
    // Power failure & recovery
    // ------------------------------------------------------------------

    /// Simulates an external power failure: every page counted dirty is
    /// flushed to the SSD on battery power. Returns what the battery had
    /// to do — by construction at most the dirty budget.
    pub fn power_failure(&mut self) -> PowerFailureReport {
        let pages: Vec<PageId> = self.dirty.iter_counted().collect();
        let mut physical = 0u64;
        for &p in &pages {
            let data = self.mmu.page_data(p).to_vec();
            let payload = self.physical_flush_bytes(p, &data);
            self.mmu.clear_sector_mask(p);
            physical += payload as u64;
            self.ssd.submit_write_sized(p, &data, payload);
        }
        let bytes = physical;
        PowerFailureReport {
            dirty_pages: pages.len() as u64,
            bytes_flushed: bytes,
            flush_time: self.ssd.config().drain_time(bytes),
        }
    }

    /// Rebuilds NV-DRAM from the SSD after a power cycle: every page is
    /// reloaded from its durable copy (zeroes if never written), all pages
    /// are re-protected, and the trackers restart empty. Region mappings
    /// survive (their metadata lives in the flushed superblock).
    pub fn recover(&mut self) {
        for i in 0..self.mmu.pages() {
            let page = PageId(i as u64);
            match self.ssd.page_data(page) {
                Some(durable) => {
                    let durable = durable.to_vec();
                    self.mmu.page_data_mut(page).copy_from_slice(&durable);
                }
                None => self.mmu.page_data_mut(page).fill(0),
            }
            self.mmu.protect_page(page);
            self.mmu.clear_sector_mask(page);
        }
        self.dirty = DirtySet::new(self.mmu.pages());
        self.history.reset();
        self.selector.reset();
        self.pressure.reset();
        self.inflight.clear();
        self.new_dirty_this_epoch = 0;
        self.next_epoch_at = self.clock.now() + self.config.epoch;
    }

    // ------------------------------------------------------------------
    // Test & verification support
    // ------------------------------------------------------------------

    /// Asserts every internal invariant. O(pages); intended for tests and
    /// property checks.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated, most importantly the paper's
    /// durability guarantee `dirty_count <= dirty_budget`.
    pub fn validate(&self) {
        self.dirty.validate();
        assert!(
            self.dirty.dirty_count() <= self.config.dirty_budget_pages,
            "durability violation: {} dirty pages exceed budget {}",
            self.dirty.dirty_count(),
            self.config.dirty_budget_pages
        );
        assert_eq!(
            self.inflight.len() as u64,
            self.dirty.in_flight_count(),
            "in-flight IO list out of sync with page states"
        );
        for (page, flags) in self.mmu.page_table().iter() {
            match self.dirty.state(page) {
                PageState::Dirty => {
                    assert!(flags.is_writable(), "{page} is dirty but write-protected")
                }
                PageState::Clean | PageState::InFlight => assert!(
                    !flags.is_writable(),
                    "{page} is clean/in-flight but writable"
                ),
            }
        }
    }

    /// `true` if every clean mapped page matches its durable copy — the
    /// invariant that makes [`Viyojit::power_failure`]'s bounded flush
    /// sufficient for full durability.
    pub fn durable_state_consistent(&self) -> bool {
        for (_, info) in self.regions.iter() {
            for page in info.iter_pages() {
                if self.dirty.state(page) != PageState::Clean {
                    continue;
                }
                let mem = self.mmu.page_data(page);
                match self.ssd.page_data(page) {
                    Some(durable) => {
                        if durable != mem {
                            return false;
                        }
                    }
                    None => {
                        if mem.iter().any(|&b| b != 0) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

impl NvHeap for Viyojit {
    fn map(&mut self, len_bytes: u64) -> Result<RegionId, ViyojitError> {
        // Pages are already write-protected (done at startup), matching
        // Fig. 6 step 1's "write protect all the NV-DRAM pages".
        self.regions.map(len_bytes)
    }

    fn unmap(&mut self, region: RegionId) -> Result<(), ViyojitError> {
        let info = self.regions.info(region)?;
        // Wait out in-flight flushes of this region so freed pages cannot
        // be remapped while an IO still references them.
        for page in info.iter_pages() {
            if self.dirty.state(page) == PageState::InFlight {
                let done = self
                    .inflight
                    .iter()
                    .find(|&&(_, p)| p == page)
                    .map(|&(t, _)| t)
                    .expect("in-flight page has a pending IO");
                self.clock.advance_to(done);
                self.retire_completions();
            }
        }
        // Dirty pages of a dying mapping stop counting against the budget:
        // their contents are garbage now, not data to preserve.
        for page in info.iter_pages() {
            if self.dirty.state(page) == PageState::Dirty {
                self.selector.on_removed(page);
                self.dirty.discard_dirty(page);
                self.mmu.protect_page(page);
                self.mmu.clear_sector_mask(page);
            }
        }
        self.regions.unmap(region)?;
        Ok(())
    }

    fn read(&mut self, region: RegionId, offset: u64, buf: &mut [u8]) -> Result<(), ViyojitError> {
        let addr = self.regions.resolve(region, offset, buf.len())?;
        self.poll();
        self.mmu
            .read(addr, buf)
            .expect("resolved addresses are in range");
        self.poll();
        Ok(())
    }

    fn write(&mut self, region: RegionId, offset: u64, data: &[u8]) -> Result<(), ViyojitError> {
        let mut addr = self.regions.resolve(region, offset, data.len())?;
        self.poll();
        let mut rest = data;
        while !rest.is_empty() {
            let in_page = PAGE_SIZE - (addr as usize % PAGE_SIZE);
            let n = in_page.min(rest.len());
            let (chunk, tail) = rest.split_at(n);
            loop {
                match self.mmu.write(addr, chunk) {
                    Ok(()) => break,
                    Err(AccessError::WriteProtected(page)) => self.handle_fault(page),
                    Err(e @ AccessError::OutOfRange { .. }) => {
                        unreachable!("resolved addresses are in range: {e}")
                    }
                    Err(e @ AccessError::DirtyLimitReached(_)) => {
                        unreachable!("software Viyojit never arms the hardware dirty limit: {e}")
                    }
                }
            }
            addr += n as u64;
            rest = tail;
        }
        self.poll();
        Ok(())
    }

    fn region_len(&self, region: RegionId) -> Result<u64, ViyojitError> {
        Ok(self.regions.info(region)?.len_bytes)
    }
}
