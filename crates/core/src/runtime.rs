//! The Viyojit manager: dirty-budget enforcement (Fig. 6), epoch-based
//! recency tracking, proactive copying, power failure, and recovery.
//!
//! The control loop itself lives in the backend-generic
//! [`Engine`](crate::Engine) (see [`crate::engine`]); this module keeps
//! the software manager's public name and the [`PowerFailureReport`]
//! durability surface.

use battery_sim::{Battery, PowerModel};
use sim_clock::SimDuration;

use crate::engine::{Engine, SoftwareWalk};

/// How an emergency flush ended.
///
/// Ordered by severity so aggregations (the sharded frontend) can keep the
/// worst outcome across members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlushOutcome {
    /// Every obligated page reached durability.
    Complete,
    /// The flush finished but some pages exhausted their write retries.
    PagesLost,
    /// The battery's deliverable energy ran out before the flush finished;
    /// every remaining page was lost.
    BatteryExhausted,
}

/// Outcome of a simulated power failure: what the battery had to flush and
/// how the executed emergency flush went.
///
/// # Examples
///
/// ```
/// use battery_sim::{Battery, BatteryConfig, PowerModel};
/// use sim_clock::{Clock, CostModel};
/// use ssd_sim::SsdConfig;
/// use viyojit::{FlushOutcome, NvHeap, Viyojit, ViyojitConfig};
///
/// let mut v = Viyojit::new(
///     64,
///     ViyojitConfig::with_budget_pages(4),
///     Clock::new(),
///     CostModel::free(),
///     SsdConfig::datacenter(),
/// );
/// let r = v.map(4096 * 16)?;
/// v.write(r, 0, b"critical data")?;
/// let report = v.power_failure();
/// assert!(report.dirty_pages <= 4, "never more dirty pages than budget");
/// assert_eq!(report.outcome, FlushOutcome::Complete);
/// assert!(report.all_pages_accounted());
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFailureReport {
    /// Pages that were inconsistent with the SSD at the failure instant
    /// (for the baseline: the full presumed-dirty obligation).
    pub dirty_pages: u64,
    /// Of those, pages that reached durability.
    pub pages_flushed: u64,
    /// Of those, pages abandoned (retries exhausted or battery death);
    /// their updates since the last durable copy are gone.
    pub pages_lost: u64,
    /// Transient write errors retried during the flush.
    pub retries: u64,
    /// Bytes flushed on battery power.
    pub bytes_flushed: u64,
    /// Time the flush held the system up, at conservative sequential
    /// bandwidth (§5.1), including fault-induced delays.
    pub flush_time: SimDuration,
    /// Deliverable battery energy left when the flush ended. Negative when
    /// the battery died first (the unmet remainder of the obligation);
    /// infinite on the unpowered analytical path, which races no battery.
    pub energy_margin_joules: f64,
    /// How the flush ended.
    pub outcome: FlushOutcome,
}

impl PowerFailureReport {
    /// Energy the flush drew at the given system power.
    pub fn energy_needed_joules(&self, power: &PowerModel) -> f64 {
        self.flush_time.as_secs_f64() * power.total_watts()
    }

    /// `true` if the provisioned battery could power the flush — the
    /// durability guarantee of §4.1.
    pub fn survives(&self, battery: &Battery, power: &PowerModel) -> bool {
        self.energy_needed_joules(power) <= battery.effective_joules()
    }

    /// The accounting invariant of the executed flush: every obligated
    /// dirty page ended up either flushed or reported lost.
    pub fn all_pages_accounted(&self) -> bool {
        self.pages_flushed + self.pages_lost == self.dirty_pages
    }
}

/// The Viyojit NV-DRAM manager (the paper's primary contribution).
///
/// `Viyojit` presents the full NV-DRAM capacity through the mmap-like
/// [`NvHeap`](crate::NvHeap) API while guaranteeing that at most
/// [`ViyojitConfig::dirty_budget_pages`](crate::ViyojitConfig) pages are
/// ever inconsistent with the backing SSD, so a battery sized for the
/// *budget* — not the DRAM — suffices for durability.
///
/// Mechanics (paper §5):
/// - every mapped page starts write-protected; the first write faults and
///   the handler adds the page to the dirty set (Fig. 6),
/// - if the budget is full the writer stalls while a least-recently-updated
///   victim is copied out,
/// - a per-epoch walker samples and clears PTE dirty bits (flushing the TLB
///   for exactness) to maintain update recency, feeds an EWMA predictor of
///   dirty-page pressure, and proactively copies cold pages so writers
///   rarely stall.
///
/// Since the engine unification this is [`Engine`] instantiated with the
/// [`SoftwareWalk`] backend; the hardware-assisted
/// [`MmuAssistedViyojit`](crate::MmuAssistedViyojit) shares every line of
/// the control loop and differs only in how dirtiness is observed.
///
/// # Examples
///
/// See [`NvHeap`](crate::NvHeap) for the write/read surface and
/// [`Engine::power_failure`] for the durability path.
pub type Viyojit = Engine<SoftwareWalk>;
