//! The executed emergency flush: page-by-page, against a possibly faulty
//! SSD, racing a draining battery.
//!
//! Historically `power_failure()` was *analytical*: every backend flushed
//! its obligation atomically and stamped `flush_time = drain_time(bytes)`,
//! so the battery was never consulted and the flush could never fail. This
//! module replaces that with a state machine that steps the obligation one
//! page at a time on a **local** timeline (the shared virtual clock never
//! advances during a power failure — the rest of the system is dead), while
//! the battery's deliverable energy drains at `PowerModel` wattage.
//!
//! Determinism contract: with an inactive [`FaultPlan`] and no battery
//! supplied, the executor submits exactly the writes the legacy analytical
//! path submitted, in the same order, and produces the same
//! `dirty_pages`/`bytes_flushed`/`flush_time` figures — so every historical
//! bench output is reproduced byte for byte.

use battery_sim::{Battery, PowerModel};
use fault_sim::crashpoint;
use mem_sim::{PageId, PAGE_SIZE};
use sim_clock::SimDuration;
use telemetry::{CostClass, TraceEvent};

use crate::{FlushOutcome, PowerFailureReport};

use super::EngineCore;

/// Write retry policy for transient SSD errors during the emergency flush.
/// Backoff doubles from `RETRY_BACKOFF_BASE` per attempt, capped at
/// `RETRY_BACKOFF_MAX`; a page is abandoned after `MAX_FLUSH_ATTEMPTS`
/// failed attempts.
pub const MAX_FLUSH_ATTEMPTS: u32 = 8;
/// Backoff charged after the first failed attempt.
pub const RETRY_BACKOFF_BASE: SimDuration = SimDuration::from_micros(50);
/// Ceiling on the per-attempt backoff.
pub const RETRY_BACKOFF_MAX: SimDuration = SimDuration::from_millis(5);

/// One page the battery is obliged to make durable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ObligationItem {
    pub(crate) page: PageId,
    /// Physical (post-codec) payload bytes this page's flush ships.
    pub(crate) payload: usize,
}

/// Everything a backend owes the battery at the failure instant.
///
/// `obligation_pages`/`obligation_bytes` are the *reported* obligation and
/// may exceed the submitted items: the full-battery baseline reports its
/// entire capacity as the obligation while only mapped pages carry content
/// to submit — the unmapped remainder is durable by construction (all
/// zeroes) and counts as flushed without an IO.
/// Like [`EngineCore`], public only so [`DirtyTracker`] signatures can
/// name it; opaque outside the crate.
///
/// [`DirtyTracker`]: super::DirtyTracker
#[derive(Debug)]
pub struct FlushObligation {
    pub(crate) items: Vec<ObligationItem>,
    pub(crate) obligation_pages: u64,
    pub(crate) obligation_bytes: u64,
}

impl FlushObligation {
    /// An obligation whose every item ships a full page — the hardware
    /// and baseline backends, whose collections arrive run-batched from
    /// the huge tier (uniformly dirty 512-page runs taken wholesale,
    /// empty runs skipped) with no per-page payload computation.
    pub(crate) fn full_pages(items: Vec<ObligationItem>) -> Self {
        let obligation_pages = items.len() as u64;
        FlushObligation {
            obligation_bytes: obligation_pages * PAGE_SIZE as u64,
            obligation_pages,
            items,
        }
    }

    /// Pages the report must account for.
    pub fn pages(&self) -> u64 {
        self.obligation_pages
    }

    /// Bytes the battery is sized against.
    pub fn bytes(&self) -> u64 {
        self.obligation_bytes
    }
}

/// Exponential backoff after the `attempt`-th failure (1-based).
fn backoff_after(attempt: u32) -> SimDuration {
    let factor = 1u64 << (attempt - 1).min(63);
    (RETRY_BACKOFF_BASE * factor).min(RETRY_BACKOFF_MAX)
}

/// Executes the emergency flush.
///
/// `supply` is the powered path: the battery's deliverable energy (after
/// any injected hold-up shortfall) buys `energy / watts` seconds of flush
/// time on the local timeline; running out abandons every remaining page.
/// Without a supply the flush has unbounded time (the legacy contract) and
/// only exhausted retries can lose pages.
///
/// In-flight copier IOs at the failure instant are part of the obligation:
/// their pages are already write-protected with stable snapshots submitted
/// to the device, so the executor charges the tail of the longest pending
/// IO to the local timeline before stepping fresh pages (satellite fix for
/// `power_failure()` silently dropping `core.inflight`).
pub(crate) fn execute(
    core: &mut EngineCore,
    obligation: FlushObligation,
    supply: Option<(&Battery, &PowerModel)>,
) -> PowerFailureReport {
    let FlushObligation {
        items,
        obligation_pages,
        obligation_bytes,
    } = obligation;

    // Fast path: nothing can fail and nothing is racing, so reproduce the
    // analytical flush exactly (same submissions, same report).
    if supply.is_none() && !core.faults.is_active() {
        for item in &items {
            let data = core.mmu.page_data(item.page).to_vec();
            core.ssd.submit_write_sized(item.page, &data, item.payload);
        }
        let flush_time = core.ssd.config().drain_time(obligation_bytes);
        core.profiler
            .aux_charge(CostClass::EmergencyFlush, flush_time);
        return PowerFailureReport {
            dirty_pages: obligation_pages,
            pages_flushed: obligation_pages,
            pages_lost: 0,
            retries: 0,
            bytes_flushed: obligation_bytes,
            flush_time,
            energy_margin_joules: f64::INFINITY,
            outcome: FlushOutcome::Complete,
        };
    }

    // Local timeline: the shared clock is frozen (the system is dead), so
    // elapsed flush time accumulates here. Seed it with the tail of any
    // copier IO still in flight — those submissions already hold SSD
    // channels and the battery must power the device until they retire.
    let now = core.clock.now();
    let mut elapsed = core
        .inflight
        .iter()
        .map(|&(done, _)| done.saturating_since(now))
        .max()
        .unwrap_or(SimDuration::ZERO);

    let time_budget = supply.map(|(battery, power)| {
        let joules = battery.deliverable_joules(&core.faults);
        let watts = power.total_watts();
        (SimDuration::from_secs_f64(joules / watts), joules, watts)
    });

    // Pages in the reported obligation with no item to submit (the
    // baseline's unmapped remainder) are durable as-is: count them flushed.
    let mut pages_flushed = obligation_pages - items.len() as u64;
    let mut pages_lost = 0u64;
    let mut retries = 0u64;
    let mut backoff_total = SimDuration::ZERO;
    let mut bytes_flushed = 0u64;
    let mut exhausted = false;
    let ssd_config = core.ssd.config().clone();
    let drain_one = |bytes: usize| ssd_config.drain_time(bytes as u64);

    let mut remaining = items.iter();
    while let Some(item) = remaining.next() {
        let mut attempt = 1u32;
        let flushed = loop {
            let fault = core.faults.ssd_write_fault(item.page.0);
            let attempt_time = drain_one(item.payload) * fault.latency_factor as u64 + fault.stall;
            if let Some((budget, _, _)) = time_budget {
                if elapsed + attempt_time > budget {
                    exhausted = true;
                    break false;
                }
            }
            elapsed += attempt_time;
            if !fault.error {
                break true;
            }
            core.ssd.note_write_error(item.page.0, item.payload);
            // Power cut mid-retry: some pages durable, this one's failed
            // attempt charged but its backoff never taken.
            crashpoint!(core.crashes, EmergencyRetry);
            if attempt >= MAX_FLUSH_ATTEMPTS {
                break false;
            }
            let backoff = backoff_after(attempt);
            core.profiler.aux_charge(CostClass::FaultRetry, backoff);
            backoff_total += backoff;
            core.stats.flush_retries += 1;
            retries += 1;
            core.telemetry.emit(|| TraceEvent::FlushRetry {
                page: item.page.0,
                attempt,
                backoff_nanos: backoff.as_nanos(),
            });
            // Backoff only costs time when it exceeds the channel-release
            // gap the failed attempt already charged; charge the excess.
            elapsed += backoff;
            attempt += 1;
        };
        if flushed {
            let data = core.mmu.page_data(item.page).to_vec();
            core.ssd.submit_write_sized(item.page, &data, item.payload);
            bytes_flushed += item.payload as u64;
            pages_flushed += 1;
        } else {
            pages_lost += 1;
            core.telemetry
                .emit(|| TraceEvent::PageLost { page: item.page.0 });
            if exhausted {
                // The battery is dead: every page still pending is lost.
                for rest in remaining {
                    pages_lost += 1;
                    core.telemetry
                        .emit(|| TraceEvent::PageLost { page: rest.page.0 });
                }
                break;
            }
        }
    }

    let energy_margin_joules = match time_budget {
        Some((_, joules, watts)) => {
            if exhausted {
                // Report the unmet remainder as a negative margin: energy
                // the flush *needed* beyond what the battery delivered.
                let unmet = obligation_bytes.saturating_sub(bytes_flushed);
                -(drain_one(unmet as usize).as_secs_f64() * watts)
            } else {
                joules - elapsed.as_secs_f64() * watts
            }
        }
        None => f64::INFINITY,
    };
    let outcome = if exhausted {
        FlushOutcome::BatteryExhausted
    } else if pages_lost > 0 {
        FlushOutcome::PagesLost
    } else {
        FlushOutcome::Complete
    };
    core.telemetry.emit(|| TraceEvent::EmergencyFlush {
        pages_flushed,
        pages_lost,
        retries,
    });
    // The emergency flush runs on its own timeline while the shared clock
    // is frozen, so it is accounted off-conservation: device/stall time
    // under `emergency_flush`, retry backoff separately under
    // `fault_retry` (the two aux classes partition `elapsed`).
    core.profiler.aux_charge(
        CostClass::EmergencyFlush,
        elapsed.saturating_sub(backoff_total),
    );
    PowerFailureReport {
        dirty_pages: obligation_pages,
        pages_flushed,
        pages_lost,
        retries,
        bytes_flushed,
        flush_time: elapsed,
        energy_margin_joules,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff_after(1), SimDuration::from_micros(50));
        assert_eq!(backoff_after(2), SimDuration::from_micros(100));
        assert_eq!(backoff_after(3), SimDuration::from_micros(200));
        assert_eq!(backoff_after(30), RETRY_BACKOFF_MAX);
    }
}
