//! The hierarchical budget tree: machine → tenant → shard.
//!
//! One server, many tenants, one battery (ROADMAP open item 3; the
//! paper's §5.1 budget derivation promoted to a cloud-operator scenario).
//! [`BudgetTree`] generalises the flat [`BudgetArbiter`] into two levels:
//!
//! - the **machine** level divides the battery's provisioned dirty budget
//!   among tenants, honouring each tenant's [`TenantQos`] — a
//!   `guaranteed` allocation plus a `burst` allowance above it. Burst
//!   pages are granted demand-proportionally from whatever the
//!   guarantees leave over; under pressure (the total no longer covers
//!   the guarantees) the burst pool collapses *first* and the guarantees
//!   themselves then scale proportionally, never below the per-shard
//!   floors — the weighted-reclaim rule;
//! - the **shard** level is each tenant's private [`BudgetArbiter`],
//!   dividing the tenant's allocation among its shards exactly as the
//!   flat arbiter always has.
//!
//! Both levels run the same largest-remainder division as the flat
//! arbiter always has, and a tenant's demand is
//! the *sum* of its shards' demand scores — so a tree with one tenant
//! owning every shard plans byte-identically to the flat arbiter it
//! replaced. The equivalence property in `engine_equivalence_prop.rs`
//! pins that down.
//!
//! Degraded-mode policy composes per tenant: a [`throttle`]
//! (typically set by a per-tenant
//! [`DegradationGovernor`](super::DegradationGovernor)) caps the
//! tenant's allocation — burst first, then guarantee — while sibling
//! tenants keep their QoS.
//!
//! [`throttle`]: BudgetTree::throttle

use crate::{InvariantViolation, ViyojitStats};

use super::arbiter::{divide_with_caps, BudgetArbiter};
use super::{DirtyTracker, Engine};

use telemetry::Profiler;

/// Identifies a tenant within a budget hierarchy (or the historical
/// [`BalloonedCluster`](crate::BalloonedCluster), whose tenants are
/// one-shard tree nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub usize);

/// Per-tenant dirty-budget QoS: a guaranteed allocation plus a burst
/// allowance above it.
///
/// `guaranteed_pages` is honoured whenever the machine total covers the
/// sum of guarantees; `burst_pages` bounds how far above the guarantee
/// demand-proportional ballooning may carry the tenant.
///
/// # Examples
///
/// ```
/// use viyojit::TenantQos;
///
/// let qos = TenantQos::guaranteed(64).burst(32);
/// assert_eq!(qos.guaranteed_pages, 64);
/// assert_eq!(qos.capacity(), 96);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQos {
    /// Pages the tenant is entitled to whenever the machine total covers
    /// the sum of all guarantees.
    pub guaranteed_pages: u64,
    /// Pages of burst headroom above the guarantee (saturating; the
    /// default is unbounded).
    pub burst_pages: u64,
}

impl TenantQos {
    /// A QoS of `pages` guaranteed with unbounded burst.
    pub fn guaranteed(pages: u64) -> Self {
        TenantQos {
            guaranteed_pages: pages,
            burst_pages: u64::MAX,
        }
    }

    /// Caps burst headroom above the guarantee at `pages`.
    pub fn burst(mut self, pages: u64) -> Self {
        self.burst_pages = pages;
        self
    }

    /// The most the tenant may ever hold: guarantee plus burst.
    pub fn capacity(&self) -> u64 {
        self.guaranteed_pages.saturating_add(self.burst_pages)
    }
}

/// One tenant's point-in-time accounting, as reported by
/// [`ShardControlPlane::tenant_stats`](super::ShardControlPlane::tenant_stats).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: TenantId,
    /// The tenant's configured name.
    pub name: String,
    /// Sum of the budgets currently assigned to the tenant's shards.
    pub budget_pages: u64,
    /// Pages the tenant's shards currently count dirty.
    pub dirty_pages: u64,
    /// Field-wise sum of the tenant's shard counters.
    pub stats: ViyojitStats,
    /// Pages this tenant lost to emergency flushes so far (cumulative
    /// across power failures).
    pub pages_lost: u64,
    /// `true` while a degraded-mode throttle caps the tenant.
    pub throttled: bool,
}

#[derive(Debug)]
struct TenantNode {
    name: String,
    first_shard: usize,
    qos: TenantQos,
    /// Degraded-mode cap on the tenant's allocation; `None` when nominal.
    throttle: Option<u64>,
    /// The tenant's private shard-level arbiter (holds the per-shard
    /// demand baselines).
    inner: BudgetArbiter,
}

impl TenantNode {
    fn shards(&self) -> usize {
        self.inner.members()
    }

    /// The tenant's absolute floor: its shards' per-shard minima.
    fn base(&self, min_per_shard: u64) -> u64 {
        min_per_shard * self.shards() as u64
    }

    /// The tenant's allocation ceiling: QoS capacity, further capped by
    /// an active throttle, never below the shard floors.
    fn cap(&self, min_per_shard: u64) -> u64 {
        self.qos
            .capacity()
            .min(self.throttle.unwrap_or(u64::MAX))
            .max(self.base(min_per_shard))
    }

    /// The tenant's effective guarantee: at least the shard floors, at
    /// most the ceiling.
    fn floor(&self, min_per_shard: u64) -> u64 {
        self.qos
            .guaranteed_pages
            .max(self.base(min_per_shard))
            .min(self.cap(min_per_shard))
    }
}

/// The two-level budget hierarchy dividing one battery's dirty budget
/// across tenants, and each tenant's allocation across its shards.
///
/// Replaces the flat [`BudgetArbiter`] in the sharded frontends; the flat
/// arbiter survives as the per-tenant inner node. The same
/// `plan` / apply shrink-first / `commit` cycle applies, now producing
/// one target per *shard* with tenant QoS enforced in between.
#[derive(Debug)]
pub struct BudgetTree {
    total_budget_pages: u64,
    min_per_shard: u64,
    nodes: Vec<TenantNode>,
    /// Shard index → tenant index (shards are contiguous per tenant).
    shard_tenant: Vec<usize>,
    rebalances: u64,
}

impl BudgetTree {
    /// The degenerate hierarchy: one tenant owning all `shards`, with its
    /// guarantee at the shard floors and unbounded burst — plans
    /// byte-identically to `BudgetArbiter::new(shards, total, min)`.
    ///
    /// # Panics
    ///
    /// As [`BudgetTree::with_tenants`].
    pub fn single(shards: usize, total_budget_pages: u64, min_per_shard: u64) -> Self {
        Self::with_tenants(
            vec![(
                "default".to_string(),
                shards,
                TenantQos::guaranteed(min_per_shard * shards as u64),
            )],
            total_budget_pages,
            min_per_shard,
        )
    }

    /// Builds the hierarchy from `(name, shards, qos)` tenant specs;
    /// tenants own contiguous shard ranges in spec order.
    ///
    /// # Panics
    ///
    /// Panics if there are no tenants, a tenant has no shards, the
    /// per-shard floor is zero, the floors exceed the total, or a
    /// tenant's guarantee is below its shard floors. (The builder
    /// validates these into typed errors first.)
    pub fn with_tenants(
        tenants: Vec<(String, usize, TenantQos)>,
        total_budget_pages: u64,
        min_per_shard: u64,
    ) -> Self {
        assert!(
            !tenants.is_empty(),
            "a budget tree needs at least one tenant"
        );
        assert!(min_per_shard > 0, "shards need at least one dirty page");
        let mut nodes = Vec::with_capacity(tenants.len());
        let mut shard_tenant = Vec::new();
        let mut first_shard = 0usize;
        for (t, (name, shards, qos)) in tenants.into_iter().enumerate() {
            assert!(shards > 0, "tenant {name:?} needs at least one shard");
            assert!(
                qos.guaranteed_pages >= min_per_shard * shards as u64,
                "tenant {name:?}'s guarantee is below its shard floors"
            );
            // The inner arbiter's own floor check runs against the
            // guarantee (the least the tenant can be allocated under
            // nominal totals).
            let inner = BudgetArbiter::new(shards, qos.guaranteed_pages, min_per_shard);
            shard_tenant.extend(std::iter::repeat_n(t, shards));
            nodes.push(TenantNode {
                name,
                first_shard,
                qos,
                throttle: None,
                inner,
            });
            first_shard += shards;
        }
        assert!(
            min_per_shard * shard_tenant.len() as u64 <= total_budget_pages,
            "per-member floors exceed the provisioned budget"
        );
        BudgetTree {
            total_budget_pages,
            min_per_shard,
            nodes,
            shard_tenant,
            rebalances: 0,
        }
    }

    /// Total shard count across all tenants.
    pub fn members(&self) -> usize {
        self.shard_tenant.len()
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shared provisioned budget.
    pub fn total_budget_pages(&self) -> u64 {
        self.total_budget_pages
    }

    /// The per-shard floor.
    pub fn min_per_shard(&self) -> u64 {
        self.min_per_shard
    }

    /// Rebalances committed so far.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// The tenant owning shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn tenant_of_shard(&self, shard: usize) -> TenantId {
        TenantId(self.shard_tenant[shard])
    }

    /// The contiguous shard range tenant `t` owns.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn tenant_shards(&self, t: TenantId) -> std::ops::Range<usize> {
        let node = &self.nodes[t.0];
        node.first_shard..node.first_shard + node.shards()
    }

    /// Tenant `t`'s configured name.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn tenant_name(&self, t: TenantId) -> &str {
        &self.nodes[t.0].name
    }

    /// Tenant `t`'s QoS.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn tenant_qos(&self, t: TenantId) -> TenantQos {
        self.nodes[t.0].qos
    }

    /// Tenant `t`'s active degraded-mode cap, if any.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn throttle_of(&self, t: TenantId) -> Option<u64> {
        self.nodes[t.0].throttle
    }

    /// Caps tenant `t`'s allocation at `cap` pages (clamped up to the
    /// tenant's shard floors so its writers cannot deadlock), or lifts
    /// the cap with `None`. Takes effect at the next plan; the caller
    /// follows with a plan/apply/commit cycle, exactly as after
    /// [`BudgetTree::set_total_budget`].
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn throttle(&mut self, t: TenantId, cap: Option<u64>) {
        let base = self.nodes[t.0].base(self.min_per_shard);
        self.nodes[t.0].throttle = cap.map(|c| c.max(base));
    }

    /// Re-provisions the machine total at runtime. Guarantees may now
    /// exceed the total — the weighted-reclaim path scales them — but the
    /// absolute per-shard floors must still fit.
    ///
    /// # Panics
    ///
    /// Panics if the per-shard floors no longer fit `pages`.
    pub fn set_total_budget(&mut self, pages: u64) {
        assert!(
            self.min_per_shard * self.members() as u64 <= pages,
            "per-member floors exceed the re-provisioned budget"
        );
        self.total_budget_pages = pages;
    }

    /// Divides the machine total among tenants given each tenant's summed
    /// demand score. Guarantees first; the remainder demand-proportionally
    /// up to each tenant's cap; under pressure the guarantees themselves
    /// scale, never below the shard floors.
    fn tenant_allocations(&self, tenant_demands: &[u64]) -> Vec<u64> {
        let min = self.min_per_shard;
        let bases: Vec<u64> = self.nodes.iter().map(|n| n.base(min)).collect();
        let floors: Vec<u64> = self.nodes.iter().map(|n| n.floor(min)).collect();
        let caps: Vec<u64> = self.nodes.iter().map(|n| n.cap(min)).collect();
        // Construction/re-provisioning guarantee the bases fit the total.
        let available = self.total_budget_pages - bases.iter().sum::<u64>();
        let extras: Vec<u64> = floors.iter().zip(&bases).map(|(f, b)| f - b).collect();
        let extras_sum: u64 = extras.iter().sum();

        if extras_sum <= available {
            // Nominal: full guarantees, then the burst pool by demand.
            let burst_pool = available - extras_sum;
            let headroom: Vec<u64> = caps.iter().zip(&floors).map(|(c, f)| c - f).collect();
            let burst = divide_with_caps(burst_pool, tenant_demands, &headroom);
            floors.iter().zip(&burst).map(|(f, b)| f + b).collect()
        } else {
            // Pressure: the burst pool is already gone; shrink the
            // guarantees proportionally to their size, never below the
            // shard floors (weights double as caps, so no tenant is
            // granted past its own guarantee).
            let granted = divide_with_caps(available, &extras, &extras);
            bases.iter().zip(&granted).map(|(b, g)| b + g).collect()
        }
    }

    /// Computes one target budget per shard: tenant-level division of the
    /// machine total, then each tenant's inner largest-remainder division
    /// of its allocation.
    ///
    /// # Panics
    ///
    /// Panics if `stats` does not have one entry per shard.
    pub fn plan(&self, stats: &[ViyojitStats]) -> Vec<u64> {
        assert_eq!(stats.len(), self.members(), "one stats snapshot per shard");
        let tenant_demands: Vec<u64> = self
            .nodes
            .iter()
            .map(|n| {
                let range = n.first_shard..n.first_shard + n.shards();
                n.inner.demands(&stats[range]).iter().sum()
            })
            .collect();
        let allocs = self.tenant_allocations(&tenant_demands);
        let mut targets = Vec::with_capacity(self.members());
        for (node, &alloc) in self.nodes.iter().zip(&allocs) {
            let range = node.first_shard..node.first_shard + node.shards();
            targets.extend(node.inner.plan_with_total(alloc, &stats[range]));
        }
        targets
    }

    /// The initial per-shard division before any demand is observed:
    /// tenant allocations under uniform demand, spread evenly inside each
    /// tenant (raised to the floor) — for a single tenant this reproduces
    /// the flat arbiter's `initial_share` exactly.
    pub fn initial_shares(&self) -> Vec<u64> {
        let uniform: Vec<u64> = self.nodes.iter().map(|n| n.shards() as u64).collect();
        let allocs = self.tenant_allocations(&uniform);
        let mut shares = Vec::with_capacity(self.members());
        for (node, &alloc) in self.nodes.iter().zip(&allocs) {
            let even = (alloc / node.shards() as u64).max(self.min_per_shard);
            shares.extend(std::iter::repeat_n(even, node.shards()));
        }
        shares
    }

    /// Records the post-apply stats as each tenant's new demand baseline
    /// and counts the rebalance.
    ///
    /// # Panics
    ///
    /// Panics if `stats` does not have one entry per shard.
    pub fn commit(&mut self, stats: &[ViyojitStats]) {
        assert_eq!(stats.len(), self.members(), "one stats snapshot per shard");
        for node in &mut self.nodes {
            let range = node.first_shard..node.first_shard + node.shards();
            node.inner.commit(&stats[range]);
        }
        self.rebalances += 1;
    }

    /// Checks that `assigned` budgets fit the provisioned total.
    ///
    /// # Errors
    ///
    /// [`InvariantViolation::OverCommit`] when they do not.
    pub fn check_assignment(&self, assigned: u64) -> Result<(), InvariantViolation> {
        if assigned > self.total_budget_pages {
            return Err(InvariantViolation::OverCommit {
                assigned,
                provisioned: self.total_budget_pages,
            });
        }
        Ok(())
    }
}

/// Applies `targets` to `engines` shrink-first then grow, so the
/// instantaneous sum of assigned budgets never exceeds the provisioned
/// total — the one apply loop shared by the sequential sharded frontend
/// and [`BalloonedCluster`](crate::BalloonedCluster) (the parallel
/// runtime plays the same two phases over grant messages).
///
/// Shrinks run under a per-engine profiler `scope` when `frames` names
/// one (the shrinking engine may stall flushing down; the span attributes
/// that virtual time); grows never stall and take no scope.
pub(crate) fn apply_budgets<B: DirtyTracker>(
    engines: &mut [Engine<B>],
    targets: &[u64],
    profiler: &Profiler,
    frames: &[&'static str],
) {
    for (i, (engine, &target)) in engines.iter_mut().zip(targets).enumerate() {
        if target < engine.dirty_budget() {
            let _scope = frames.get(i).map(|&f| profiler.scope(f));
            engine.set_dirty_budget(target);
        }
    }
    // Power cut between the phases: donors already shrunk, receivers not
    // yet grown — the total is under-assigned but never over-assigned.
    if let Some(engine) = engines.first() {
        fault_sim::crashpoint!(engine.core.crashes, BudgetShrinkGrow);
    }
    for (engine, &target) in engines.iter_mut().zip(targets) {
        if target > engine.dirty_budget() {
            engine.set_dirty_budget(target);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(stalls: u64, dirtied: u64) -> ViyojitStats {
        ViyojitStats {
            budget_stalls: stalls,
            pages_dirtied: dirtied,
            ..ViyojitStats::default()
        }
    }

    fn two_tenants(total: u64) -> BudgetTree {
        BudgetTree::with_tenants(
            vec![
                ("alpha".into(), 2, TenantQos::guaranteed(8).burst(100)),
                ("beta".into(), 2, TenantQos::guaranteed(8).burst(100)),
            ],
            total,
            2,
        )
    }

    #[test]
    fn single_tenant_tree_plans_like_the_flat_arbiter() {
        let mut tree = BudgetTree::single(3, 100, 5);
        let mut flat = BudgetArbiter::new(3, 100, 5);
        let snapshots = [
            vec![stats(0, 7), stats(3, 50), stats(0, 0)],
            vec![stats(1, 80), stats(3, 50), stats(2, 9)],
            vec![stats(4, 81), stats(3, 50), stats(2, 200)],
        ];
        assert_eq!(
            tree.initial_shares(),
            vec![flat.initial_share(); 3],
            "initial division must match the flat even rule"
        );
        for snap in &snapshots {
            assert_eq!(tree.plan(snap), flat.plan(snap));
            tree.commit(snap);
            flat.commit(snap);
        }
        assert_eq!(tree.rebalances(), flat.rebalances());
    }

    #[test]
    fn guarantees_are_honoured_and_burst_follows_demand() {
        let tree = two_tenants(64);
        // beta stalls hard; alpha sleeps. Both keep their guarantee of 8;
        // the burst pool (64 - 16 = 48) flows to beta.
        let snap = [stats(0, 0), stats(0, 0), stats(20, 300), stats(20, 300)];
        let t = tree.plan(&snap);
        let alpha: u64 = t[..2].iter().sum();
        let beta: u64 = t[2..].iter().sum();
        assert!(alpha >= 8, "alpha keeps its guarantee, got {alpha}");
        assert!(beta > alpha * 3, "burst follows demand: {alpha} vs {beta}");
        assert_eq!(alpha + beta, 64);
    }

    #[test]
    fn burst_caps_bound_ballooning() {
        let tree = BudgetTree::with_tenants(
            vec![
                ("greedy".into(), 1, TenantQos::guaranteed(4).burst(6)),
                ("quiet".into(), 1, TenantQos::guaranteed(4)),
            ],
            64,
            2,
        );
        let t = tree.plan(&[stats(50, 500), stats(0, 0)]);
        assert_eq!(t[0], 10, "guarantee 4 + burst 6 caps the greedy tenant");
        assert_eq!(t[0] + t[1], 64, "the excess flows to the sibling");
    }

    #[test]
    fn pressure_shrinks_burst_before_guarantees() {
        let mut tree = two_tenants(64);
        let busy = [stats(5, 50), stats(5, 50), stats(5, 50), stats(5, 50)];
        // Above the guarantee sum (16): both tenants keep 8 and split the rest.
        let t = tree.plan(&busy);
        assert!(t[..2].iter().sum::<u64>() >= 8);
        assert!(t[2..].iter().sum::<u64>() >= 8);
        // Shrink to exactly the guarantee sum: burst gone, guarantees whole.
        tree.set_total_budget(16);
        let t = tree.plan(&busy);
        assert_eq!(t[..2].iter().sum::<u64>(), 8);
        assert_eq!(t[2..].iter().sum::<u64>(), 8);
        // Below the guarantee sum: guarantees scale, floors hold.
        tree.set_total_budget(12);
        let t = tree.plan(&busy);
        assert_eq!(t.iter().sum::<u64>(), 12);
        assert!(t.iter().all(|&x| x >= 2), "shard floors hold: {t:?}");
    }

    #[test]
    fn throttle_caps_one_tenant_and_frees_its_pages() {
        let mut tree = two_tenants(64);
        let snap = [stats(9, 90), stats(9, 90), stats(1, 5), stats(1, 5)];
        let before = tree.plan(&snap);
        assert!(before[..2].iter().sum::<u64>() > 32);
        tree.throttle(TenantId(0), Some(10));
        let after = tree.plan(&snap);
        assert_eq!(after[..2].iter().sum::<u64>(), 10, "cap binds");
        assert!(
            after[2..].iter().sum::<u64>() >= before[2..].iter().sum::<u64>(),
            "the sibling inherits the freed pages"
        );
        // Lifting the throttle restores demand-proportional ballooning.
        tree.throttle(TenantId(0), None);
        assert_eq!(tree.plan(&snap), before);
        // A cap below the shard floors clamps up: writers never deadlock.
        tree.throttle(TenantId(0), Some(1));
        assert_eq!(tree.throttle_of(TenantId(0)), Some(4));
    }

    #[test]
    fn shard_routing_metadata_is_consistent() {
        let tree = two_tenants(64);
        assert_eq!(tree.members(), 4);
        assert_eq!(tree.tenant_count(), 2);
        assert_eq!(tree.tenant_of_shard(0), TenantId(0));
        assert_eq!(tree.tenant_of_shard(3), TenantId(1));
        assert_eq!(tree.tenant_shards(TenantId(1)), 2..4);
        assert_eq!(tree.tenant_name(TenantId(0)), "alpha");
        assert_eq!(tree.tenant_qos(TenantId(1)).guaranteed_pages, 8);
    }

    #[test]
    #[should_panic(expected = "guarantee is below its shard floors")]
    fn guarantees_below_shard_floors_panic() {
        BudgetTree::with_tenants(vec![("t".into(), 4, TenantQos::guaranteed(3))], 64, 2);
    }
}
