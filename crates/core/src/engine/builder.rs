//! Construction of sharded deployments: one builder, two execution modes.
//!
//! [`ShardedViyojitBuilder`] replaces the old
//! `ShardedViyojit::new(...)` + mutable `attach_telemetry` /
//! `attach_profiler` / `attach_faults` trio. The builder consumes every
//! attachment *before* anything runs, which is what makes the parallel
//! mode possible at all: shard threads take ownership of their engines at
//! spawn time, so there is no window where a half-attached engine is
//! visible from two threads.
//!
//! - [`build_sequential`](ShardedViyojitBuilder::build_sequential)
//!   produces the classic single-threaded [`ShardedViyojit`] frontend —
//!   bit-identical virtual-time behaviour to the deprecated constructor.
//! - [`build_parallel`](ShardedViyojitBuilder::build_parallel) spawns one
//!   OS thread per (group of) shard(s) plus an arbiter thread and returns
//!   the split [`ShardDataHandle`] / [`ShardControlHandle`] pair.

use std::marker::PhantomData;
use std::sync::Arc;

use fault_sim::{CrashSchedule, FaultPlan};
use sim_clock::{Clock, CostModel, SimDuration};
use ssd_sim::SsdConfig;
use telemetry::{ExporterConfig, FlightRecorder, Profiler, Telemetry};

use crate::{ViyojitConfig, ViyojitError};

use super::parallel::{spawn_parallel, ShardControlHandle, ShardDataHandle};
use super::{BudgetTree, DirtyTracker, ShardedViyojit, SoftwareWalk, TenantId, TenantQos};

/// One tenant declared on the builder: a named, contiguous group of
/// shards with its own QoS envelope and (optionally) its own fault plan.
#[derive(Debug, Clone)]
pub(super) struct TenantSpec {
    pub(super) name: String,
    pub(super) shards: usize,
    pub(super) qos: TenantQos,
    pub(super) faults: Option<FaultPlan>,
}

/// Builds a sharded Viyojit deployment (sequential or thread-parallel).
///
/// Required inputs are the constructor arguments; everything else has a
/// documented default. Unlike the deprecated `ShardedViyojit::new`,
/// validation failures surface as
/// [`ViyojitError::InvalidConfig`] instead of panics.
///
/// # Examples
///
/// ```
/// use sim_clock::SimDuration;
/// use viyojit::{NvHeap, ShardedViyojitBuilder, ViyojitConfig};
///
/// let mut nv = ShardedViyojitBuilder::new(4, 256, ViyojitConfig::with_budget_pages(64))
///     .min_per_shard(4)
///     .rebalance_period(SimDuration::from_millis(10))
///     .build_sequential()?;
/// let r = nv.map(4096 * 8)?;
/// nv.write(r, 0, b"routed to one shard's engine")?;
/// assert_eq!(nv.dirty_count(), 1);
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
///
/// Parallel mode returns split data/control handles instead:
///
/// ```
/// use viyojit::{NvHeap, ShardControlPlane, ShardDataPlane, ShardedViyojitBuilder, ViyojitConfig};
///
/// let (mut data, mut ctrl) = ShardedViyojitBuilder::new(4, 256, ViyojitConfig::with_budget_pages(64))
///     .threads(2)
///     .build_parallel()?;
/// let r = data.map(4096 * 8)?;
/// data.write(r, 0, b"served by a shard thread")?;
/// data.sync()?;
/// assert_eq!(ctrl.dirty_count()?, 1);
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
#[derive(Debug)]
pub struct ShardedViyojitBuilder<B: DirtyTracker = SoftwareWalk> {
    pub(super) shards: usize,
    pub(super) pages_per_shard: usize,
    pub(super) config: ViyojitConfig,
    pub(super) min_per_shard: u64,
    pub(super) rebalance_period: SimDuration,
    pub(super) clock: Clock,
    pub(super) costs: CostModel,
    pub(super) ssd_config: SsdConfig,
    pub(super) threads: Option<usize>,
    pub(super) telemetry: Telemetry,
    pub(super) profiler: Profiler,
    pub(super) faults: Option<FaultPlan>,
    pub(super) crashes: CrashSchedule,
    pub(super) restart_budget: u32,
    pub(super) tenants: Vec<TenantSpec>,
    pub(super) flight: Option<Arc<FlightRecorder>>,
    pub(super) exporter: Option<ExporterConfig>,
    backend: PhantomData<B>,
}

impl ShardedViyojitBuilder<SoftwareWalk> {
    /// Starts a builder for `shards` engines of `pages_per_shard` pages
    /// each, sharing `config.dirty_budget_pages` as the global budget.
    ///
    /// Defaults: software-walk backend, per-shard floor of 1 page,
    /// 10 ms rebalance period, a fresh clock at zero, free cost model,
    /// instant SSD, no telemetry/profiler/faults, one thread per shard
    /// in parallel mode.
    pub fn new(shards: usize, pages_per_shard: usize, config: ViyojitConfig) -> Self {
        ShardedViyojitBuilder {
            shards,
            pages_per_shard,
            config,
            min_per_shard: 1,
            rebalance_period: SimDuration::from_millis(10),
            clock: Clock::new(),
            costs: CostModel::free(),
            ssd_config: SsdConfig::instant(),
            threads: None,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
            faults: None,
            crashes: CrashSchedule::none(),
            restart_budget: 0,
            tenants: Vec::new(),
            flight: None,
            exporter: None,
            backend: PhantomData,
        }
    }
}

impl<B: DirtyTracker> ShardedViyojitBuilder<B> {
    /// Switches the dirty-tracking backend (e.g. `MmuAssisted`).
    pub fn backend<B2: DirtyTracker>(self) -> ShardedViyojitBuilder<B2> {
        ShardedViyojitBuilder {
            shards: self.shards,
            pages_per_shard: self.pages_per_shard,
            config: self.config,
            min_per_shard: self.min_per_shard,
            rebalance_period: self.rebalance_period,
            clock: self.clock,
            costs: self.costs,
            ssd_config: self.ssd_config,
            threads: self.threads,
            telemetry: self.telemetry,
            profiler: self.profiler,
            faults: self.faults,
            crashes: self.crashes,
            restart_budget: self.restart_budget,
            tenants: self.tenants,
            flight: self.flight,
            exporter: self.exporter,
            backend: PhantomData,
        }
    }

    /// Guarantees every shard at least `pages` of budget (default 1).
    pub fn min_per_shard(mut self, pages: u64) -> Self {
        self.min_per_shard = pages;
        self
    }

    /// Sets the demand-rebalance period (default 10 ms of virtual time).
    pub fn rebalance_period(mut self, period: SimDuration) -> Self {
        self.rebalance_period = period;
        self
    }

    /// Uses `clock` as the shared virtual timeline (default: fresh clock).
    pub fn clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the hardware cost model (default: free).
    pub fn cost_model(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Sets the per-shard SSD configuration (default: instant).
    pub fn ssd(mut self, ssd_config: SsdConfig) -> Self {
        self.ssd_config = ssd_config;
        self
    }

    /// Attaches telemetry to the frontend and every shard.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a virtual-time profiler. In parallel mode each shard
    /// thread runs a [`Profiler::fork`] over its own clock.
    pub fn profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// Attaches one fault plan, cloned to every shard.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Arms a crash-injection schedule, cloned to every shard. Clones
    /// share the schedule's fire-at-most-once latch, so at most one
    /// injected crash fires cluster-wide. The default inactive schedule
    /// ([`CrashSchedule::none`]) charges nothing anywhere.
    pub fn crashes(mut self, crashes: CrashSchedule) -> Self {
        self.crashes = crashes;
        self
    }

    /// Lets each parallel worker absorb up to `restarts` panics by
    /// respawning its shards from durable state (quarantined by the
    /// arbiter while it recovers) before a panic degrades to the fatal
    /// [`ViyojitError::ShardFailed`]. Default 0: every panic is fatal,
    /// the historical behaviour. Sequential mode ignores this — panics
    /// there unwind to the caller directly.
    pub fn restart_budget(mut self, restarts: u32) -> Self {
        self.restart_budget = restarts;
        self
    }

    /// Arms the flight recorder: every supervised crash seam (worker
    /// panic, injected crash signal, round timeout, the degradation
    /// governor entering degraded mode) dumps the crashing thread's
    /// recent trace window as `postmortem-<label>.jsonl` into the
    /// recorder's directory. Render a dump with
    /// `viyojit-trace postmortem <dump>`.
    pub fn flight_recorder(mut self, flight: FlightRecorder) -> Self {
        self.flight = Some(Arc::new(flight));
        self
    }

    /// Enables the live metrics exporter: a background thread
    /// periodically renders the merged telemetry registry (plus
    /// wall-clock histograms) in Prometheus text exposition format to
    /// `config.path`, and optionally answers HTTP scrapes when
    /// `config.listen` is set. Stops (after a final render) when the
    /// deployment is dropped.
    pub fn exporter(mut self, config: ExporterConfig) -> Self {
        self.exporter = Some(config);
        self
    }

    /// Caps the number of shard worker threads in parallel mode (default:
    /// one per shard). Shards are distributed round-robin over threads.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Declares a tenant owning the next `shards` shards (tenants claim
    /// contiguous shard ranges in declaration order) with `qos` as its
    /// guaranteed/burst dirty-page envelope.
    ///
    /// When any tenant is declared, the declared shard counts must sum to
    /// the builder's total shard count and every guarantee must cover its
    /// shards' floors; validation happens at build time. With no tenants
    /// declared, the whole machine is one implicit tenant and planning is
    /// identical to the historical flat arbiter.
    pub fn tenant(mut self, name: impl Into<String>, shards: usize, qos: TenantQos) -> Self {
        self.tenants.push(TenantSpec {
            name: name.into(),
            shards,
            qos,
            faults: None,
        });
        self
    }

    /// Attaches a fault plan to the most recently declared tenant only
    /// (its shards get this plan instead of the global [`Self::faults`]
    /// plan). Must follow a [`Self::tenant`] call.
    pub fn tenant_faults(mut self, faults: FaultPlan) -> Self {
        if let Some(last) = self.tenants.last_mut() {
            last.faults = Some(faults);
        } else {
            // Surfaced as InvalidConfig at build time.
            self.tenants.push(TenantSpec {
                name: String::new(),
                shards: 0,
                qos: TenantQos::guaranteed(0),
                faults: Some(faults),
            });
        }
        self
    }

    fn validate(&self) -> Result<(), ViyojitError> {
        if self.shards == 0 {
            return Err(ViyojitError::InvalidConfig(
                "at least one shard is required",
            ));
        }
        if self.pages_per_shard == 0 {
            return Err(ViyojitError::InvalidConfig("shards need at least one page"));
        }
        if self.min_per_shard == 0 {
            return Err(ViyojitError::InvalidConfig(
                "the per-shard budget floor must be positive",
            ));
        }
        if self.min_per_shard * self.shards as u64 > self.config.dirty_budget_pages {
            return Err(ViyojitError::InvalidConfig(
                "per-shard floors exceed the provisioned budget",
            ));
        }
        if self.rebalance_period.is_zero() {
            return Err(ViyojitError::InvalidConfig(
                "the rebalance period must be positive",
            ));
        }
        if self.threads == Some(0) {
            return Err(ViyojitError::InvalidConfig(
                "parallel mode needs at least one thread",
            ));
        }
        if !self.tenants.is_empty() {
            if self.tenants.iter().any(|t| t.shards == 0) {
                return Err(ViyojitError::InvalidConfig(
                    "tenants need at least one shard (tenant_faults requires a preceding tenant)",
                ));
            }
            let declared: usize = self.tenants.iter().map(|t| t.shards).sum();
            if declared != self.shards {
                return Err(ViyojitError::InvalidConfig(
                    "declared tenant shards must sum to the shard count",
                ));
            }
            for t in &self.tenants {
                if t.qos.guaranteed_pages < self.min_per_shard * t.shards as u64 {
                    return Err(ViyojitError::InvalidConfig(
                        "a tenant's guarantee is below its shard floors",
                    ));
                }
            }
            let guaranteed: u64 = self.tenants.iter().map(|t| t.qos.guaranteed_pages).sum();
            if guaranteed > self.config.dirty_budget_pages {
                return Err(ViyojitError::InvalidConfig(
                    "tenant guarantees exceed the provisioned budget",
                ));
            }
        }
        Ok(())
    }

    /// Materialises the budget hierarchy this builder describes: one
    /// implicit whole-machine tenant when none were declared, otherwise
    /// the declared tenants in order.
    pub(super) fn tree(&self) -> BudgetTree {
        if self.tenants.is_empty() {
            BudgetTree::single(
                self.shards,
                self.config.dirty_budget_pages,
                self.min_per_shard,
            )
        } else {
            BudgetTree::with_tenants(
                self.tenants
                    .iter()
                    .map(|t| (t.name.clone(), t.shards, t.qos))
                    .collect(),
                self.config.dirty_budget_pages,
                self.min_per_shard,
            )
        }
    }

    /// Builds the single-threaded sequential frontend.
    ///
    /// Construction order (and therefore every virtual-time charge) is
    /// identical to the deprecated `ShardedViyojit::new` followed by the
    /// `attach_*` calls, so existing golden outputs are unaffected.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::InvalidConfig`] describing the first invalid
    /// parameter.
    pub fn build_sequential(self) -> Result<ShardedViyojit<B>, ViyojitError> {
        self.validate()?;
        let mut nv = ShardedViyojit::assemble(
            self.tree(),
            self.pages_per_shard,
            self.config,
            self.rebalance_period,
            self.clock,
            self.costs,
            self.ssd_config,
        );
        nv.install_telemetry(self.telemetry);
        nv.install_profiler(self.profiler);
        if let Some(faults) = self.faults {
            nv.install_faults(faults);
        }
        nv.install_crashes(self.crashes);
        for (t, spec) in self.tenants.iter().enumerate() {
            if let Some(faults) = &spec.faults {
                nv.install_tenant_faults(TenantId(t), faults.clone());
            }
        }
        nv.install_flight(self.flight);
        nv.install_exporter(self.exporter);
        Ok(nv)
    }

    /// Spawns the thread-parallel runtime: `min(threads, shards)` shard
    /// worker threads (each owning its shards' engines outright) plus one
    /// budget-arbiter thread, and returns the data-plane / control-plane
    /// handle pair. The runtime shuts down when both handles drop.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::InvalidConfig`] describing the first invalid
    /// parameter.
    pub fn build_parallel(self) -> Result<(ShardDataHandle, ShardControlHandle), ViyojitError>
    where
        B: Send + 'static,
    {
        self.validate()?;
        Ok(spawn_parallel(self))
    }
}
