//! The dirty-tracking backends: how each mode observes page dirtiness.
//!
//! The shared engine (see [`super`]) drives Fig. 6; a [`DirtyTracker`]
//! supplies the mode-specific mechanics — what a write to a tracked page
//! costs, how newly dirty pages are discovered, what a flush pays, and
//! how power failure/recovery interact with the tracking state. Each
//! backend preserves the cost charging of the runtime it replaced: the
//! software walker traps on first writes and flushes the TLB on walks,
//! the hardware backend traps only at the budget boundary, the baseline
//! never traps at all.

use mem_sim::{AccessError, Bitmap2L, Mmu, PageId, WalkOptions, PAGE_SIZE};
use telemetry::{CostClass, TraceEvent};

use crate::codec::{encoded_page_bytes, page_content_hash, DEDUP_RECORD_BYTES};
use crate::{DirtySet, FlushCodec, InvariantViolation, PageState, RegionInfo, ViyojitConfig};

use super::emergency::{FlushObligation, ObligationItem};
use super::{retire_completions, stall_until_dirty_at_most, wait_for_page_io, EngineCore};

/// Page-tracking mechanics plugged into [`Engine`](super::Engine).
///
/// Implementations hold only the state their tracking mechanism needs
/// (the software dirty set, the hardware's known-dirty shadow, or nothing
/// at all); everything else lives in the shared [`EngineCore`]. Hooks
/// take the core and the backend as separate parameters so they can
/// re-enter the shared control flow (stall, retire, flush) without
/// aliasing.
pub trait DirtyTracker: Sized + std::fmt::Debug {
    /// Display name used by the [`NvStore`](crate::NvStore) impl.
    const SYSTEM: &'static str;

    /// Whether this backend runs the Fig. 6 control loop (epoch walks,
    /// proactive copying, budget enforcement). The baseline does not.
    const HAS_CONTROL_LOOP: bool;

    /// Whether flush payloads go through the §7 codecs; when `false` the
    /// `viyojit.physical_bytes_flushed` counter stays unpublished, as
    /// every flush ships a full page.
    const TRACKS_PHYSICAL: bool;

    /// Arms the tracking mechanism at construction time (protection pass,
    /// dirty-limit arming, or nothing) and returns the backend state.
    fn init(mmu: &mut Mmu, config: &ViyojitConfig, total_pages: usize) -> Self;

    /// Pages currently counted against the dirty budget.
    fn dirty_count(&self, core: &EngineCore) -> u64;

    /// Pages with a flush IO in flight.
    fn in_flight_pages(&self) -> u64;

    /// Handles a recoverable MMU write error (a write-protect fault or a
    /// dirty-limit interrupt); the engine retries the write afterwards.
    fn on_write_error(core: &mut EngineCore, backend: &mut Self, err: AccessError);

    /// The epoch walk (§5.2): refresh recency, discover newly dirty
    /// pages. Returns `(pages walked, newly dirty pages observed)` for
    /// the `EpochWalk` trace event and the pressure estimator.
    fn epoch_walk(core: &mut EngineCore, backend: &mut Self) -> (u64, u64);

    /// Called when the idle fast-forward path skips epochs.
    fn on_epochs_skipped(&mut self) {}

    /// Transitions `victim` into the in-flight state (it has just been
    /// re-protected; its IO is about to be submitted).
    fn mark_in_flight(core: &mut EngineCore, backend: &mut Self, victim: PageId);

    /// The physical bytes one flush of `victim` ships (the §7
    /// reductions); full pages when the backend does not track payloads.
    fn flush_payload(
        core: &mut EngineCore,
        backend: &mut Self,
        victim: PageId,
        data: &[u8],
    ) -> usize;

    /// A flush IO for `page` completed: move it clean and release its
    /// budget slot.
    fn on_flush_complete(core: &mut EngineCore, backend: &mut Self, page: PageId);

    /// Picks the victim for a forced flush when the stall loop finds no
    /// IO in flight.
    fn pick_forced_victim(core: &mut EngineCore, backend: &mut Self) -> PageId;

    /// The §8 budget hook changed the budget to `pages` (the engine
    /// stalls down to it afterwards).
    fn on_budget_changed(_core: &mut EngineCore, _backend: &mut Self, _pages: u64) {}

    /// Releases tracking state for a dying mapping: waits out in-flight
    /// flushes, then discards dirty pages (their contents are garbage
    /// now, not data to preserve).
    fn unmap_region(core: &mut EngineCore, backend: &mut Self, info: &RegionInfo);

    /// Enumerates what the design obliges the battery to flush at a power
    /// failure: the pages to submit (with their physical payloads) plus
    /// the obligation the report accounts for. The engine's emergency
    /// executor (the `emergency` module) then steps the obligation
    /// against the (possibly faulty) SSD and the battery's hold-up energy.
    fn failure_obligation(core: &mut EngineCore, backend: &mut Self) -> FlushObligation;

    /// Reloads memory from the SSD and resets the tracking state after a
    /// power cycle (the engine resets the shared trackers afterwards).
    fn recover_memory(core: &mut EngineCore, backend: &mut Self);

    /// Checks the backend's invariants, chiefly the durability bound.
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found.
    fn check_invariants(&self, core: &EngineCore) -> Result<(), InvariantViolation>;

    /// `true` if every clean mapped page matches its durable SSD copy.
    fn durable_state_consistent(&self, core: &EngineCore) -> bool;

    /// Visits the leaf words of the budget-counted page population
    /// (dirty plus in-flight), as `f(word_index, bits)`.
    ///
    /// Words may be visited in any order and more than once; callers must
    /// OR the contributions together. Words never visited hold no counted
    /// pages. The parallel sharded runtime uses this to publish each
    /// shard's dirty picture into a shared
    /// [`AtomicBitmap2L`](mem_sim::AtomicBitmap2L) a word at a time.
    fn for_each_counted_word(&self, _core: &EngineCore, _f: &mut dyn FnMut(usize, u64)) {}
}

// ----------------------------------------------------------------------
// SoftwareWalk: the paper's §5 design (write-protect faults + PTE walks)
// ----------------------------------------------------------------------

/// The paper's software tracking (§5): every page starts write-protected,
/// first writes trap into the fault handler, and the epoch walker samples
/// and clears PTE dirty bits (flushing the TLB for exactness).
///
/// `Engine<SoftwareWalk>` is [`Viyojit`](crate::Viyojit).
#[derive(Debug)]
pub struct SoftwareWalk {
    dirty: DirtySet,
    /// Content hashes of pages durable on the SSD (dedup codec only).
    dedup_hashes: std::collections::HashSet<u64>,
    new_dirty_this_epoch: u64,
}

/// The physical payload one page flush costs under the configured §7
/// reductions: sector-granular shipping (when a durable base exists to
/// patch), compression, or a dedup reference when the whole content is
/// already durable. When both sector flushing and a codec are enabled,
/// the cheaper of the two applies.
fn physical_flush_bytes(
    core: &mut EngineCore,
    sw: &mut SoftwareWalk,
    page: PageId,
    data: &[u8],
) -> usize {
    let codec_bytes = match core.config.flush_codec {
        FlushCodec::Raw => PAGE_SIZE,
        FlushCodec::Rle => encoded_page_bytes(FlushCodec::Rle, data),
        FlushCodec::RleDedup => {
            let hash = page_content_hash(data);
            if sw.dedup_hashes.insert(hash) {
                encoded_page_bytes(FlushCodec::Rle, data)
            } else {
                DEDUP_RECORD_BYTES
            }
        }
    };
    if core.config.sector_flush && core.ssd.contains(page) {
        // Clean sectors already match the durable base copy, so only
        // the modified sectors (plus an 8 B mask) need shipping.
        let sector_bytes = core.mmu.dirty_sector_bytes(page) + 8;
        codec_bytes.min(sector_bytes.min(PAGE_SIZE))
    } else {
        codec_bytes
    }
}

/// The write-protection fault handler (Fig. 6 steps 3-8).
fn handle_fault(core: &mut EngineCore, sw: &mut SoftwareWalk, page: PageId) {
    let _span = core.profiler.span(CostClass::WpTrap);
    core.stats.faults_handled += 1;
    core.telemetry
        .emit(|| TraceEvent::WriteFault { page: page.0 });
    retire_completions(core, sw);

    if sw.dirty.state(page) == PageState::InFlight {
        // The page is mid-flush; wait for its IO so the clean snapshot
        // is durable before the page is re-dirtied.
        core.stats.in_flight_collisions += 1;
        wait_for_page_io(core, sw, page);
    }
    debug_assert_eq!(sw.dirty.state(page), PageState::Clean);

    // Step 5: admitting this page must keep the count within budget.
    let admit = core.config.dirty_budget_pages - 1;
    stall_until_dirty_at_most(core, sw, admit, admit);

    // Step 8: unprotect, count, record.
    core.mmu.unprotect_page(page);
    sw.dirty.mark_dirty(page);
    core.history.touch(page);
    core.selector.on_dirty(page, &core.history);
    sw.new_dirty_this_epoch += 1;
    core.stats.pages_dirtied += 1;
}

impl DirtyTracker for SoftwareWalk {
    const SYSTEM: &'static str = "Viyojit";
    const HAS_CONTROL_LOOP: bool = true;
    const TRACKS_PHYSICAL: bool = true;

    fn init(mmu: &mut Mmu, _config: &ViyojitConfig, total_pages: usize) -> Self {
        for i in 0..total_pages {
            mmu.protect_page(PageId(i as u64));
        }
        SoftwareWalk {
            dirty: DirtySet::new(total_pages),
            dedup_hashes: std::collections::HashSet::new(),
            new_dirty_this_epoch: 0,
        }
    }

    fn dirty_count(&self, _core: &EngineCore) -> u64 {
        self.dirty.dirty_count()
    }

    fn in_flight_pages(&self) -> u64 {
        self.dirty.in_flight_count()
    }

    fn on_write_error(core: &mut EngineCore, backend: &mut Self, err: AccessError) {
        match err {
            AccessError::WriteProtected(page) => handle_fault(core, backend, page),
            e @ AccessError::DirtyLimitReached(_) => {
                unreachable!("software Viyojit never arms the hardware dirty limit: {e}")
            }
            e @ AccessError::OutOfRange { .. } => {
                unreachable!("resolved addresses are in range: {e}")
            }
        }
    }

    fn epoch_walk(core: &mut EngineCore, backend: &mut Self) -> (u64, u64) {
        // Density-dispatched collection: the same ascending pages
        // `iter_dirty` yields, gathered with the scan path matched to the
        // dirty population and uniform runs taken through the huge tier.
        let mut walk_set: Vec<PageId> = Vec::new();
        backend.dirty.collect_dirty_into(&mut walk_set);
        let options = WalkOptions {
            flush_tlb: core.config.tlb_flush_on_walk,
            charge_costs: false, // the walker runs off the app's critical path
        };
        for page in core.mmu.walk_and_clear_dirty(&walk_set, options) {
            core.history.touch(page);
            core.selector.on_touch(page, &core.history);
            core.stats.walk_touches += 1;
        }
        let new_dirty = backend.new_dirty_this_epoch;
        backend.new_dirty_this_epoch = 0;
        (walk_set.len() as u64, new_dirty)
    }

    fn on_epochs_skipped(&mut self) {
        self.new_dirty_this_epoch = 0;
    }

    fn mark_in_flight(core: &mut EngineCore, backend: &mut Self, victim: PageId) {
        // Clear the PTE dirty bit so post-flush tracking starts clean; the
        // protect just performed already invalidated the TLB entry.
        core.mmu
            .walk_and_clear_dirty(&[victim], WalkOptions::stale());
        backend.dirty.mark_in_flight(victim);
    }

    fn flush_payload(
        core: &mut EngineCore,
        backend: &mut Self,
        victim: PageId,
        data: &[u8],
    ) -> usize {
        let physical = physical_flush_bytes(core, backend, victim, data);
        core.mmu.clear_sector_mask(victim);
        physical
    }

    fn on_flush_complete(_core: &mut EngineCore, backend: &mut Self, page: PageId) {
        backend.dirty.mark_clean(page);
    }

    fn pick_forced_victim(core: &mut EngineCore, _backend: &mut Self) -> PageId {
        core.selector
            .peek()
            .expect("dirty pages exceed the limit but none are flushable or in flight")
    }

    fn unmap_region(core: &mut EngineCore, backend: &mut Self, info: &RegionInfo) {
        let start = info.first_page.index();
        let end = start + info.pages as usize;
        // Wait out in-flight flushes of this region so freed pages cannot
        // be remapped while an IO still references them. Waiting retires
        // other completions too, so re-check each page when its turn comes.
        let waiting: Vec<PageId> = page_range(&[backend.dirty.in_flight_bits()], start, end);
        for page in waiting {
            if backend.dirty.state(page) == PageState::InFlight {
                wait_for_page_io(core, backend, page);
            }
        }
        let doomed: Vec<PageId> = page_range(&[backend.dirty.dirty_bits()], start, end);
        for page in doomed {
            if backend.dirty.state(page) == PageState::Dirty {
                core.selector.on_removed(page);
                backend.dirty.discard_dirty(page);
                core.mmu.protect_page(page);
                core.mmu.clear_sector_mask(page);
            }
        }
    }

    fn failure_obligation(core: &mut EngineCore, backend: &mut Self) -> FlushObligation {
        // Emergency collection is O(runs + mixed words): uniformly
        // counted 512-page runs are taken wholesale through the huge
        // tier, in the same ascending order `iter_counted` yields.
        let mut pages: Vec<PageId> = Vec::new();
        backend.dirty.collect_counted_into(&mut pages);
        let mut items = Vec::with_capacity(pages.len());
        let mut physical = 0u64;
        for &p in &pages {
            let data = core.mmu.page_data(p).to_vec();
            let payload = physical_flush_bytes(core, backend, p, &data);
            core.mmu.clear_sector_mask(p);
            physical += payload as u64;
            items.push(ObligationItem { page: p, payload });
        }
        FlushObligation {
            obligation_pages: pages.len() as u64,
            obligation_bytes: physical,
            items,
        }
    }

    fn recover_memory(core: &mut EngineCore, backend: &mut Self) {
        for i in 0..core.mmu.pages() {
            let page = PageId(i as u64);
            match core.ssd.page_data(page) {
                Some(durable) => {
                    let durable = durable.to_vec();
                    core.mmu.page_data_mut(page).copy_from_slice(&durable);
                }
                None => core.mmu.page_data_mut(page).fill(0),
            }
            core.mmu.protect_page(page);
            core.mmu.clear_sector_mask(page);
        }
        backend.dirty.reset();
        backend.new_dirty_this_epoch = 0;
        // dedup_hashes survive: the SSD still holds those contents.
    }

    fn check_invariants(&self, core: &EngineCore) -> Result<(), InvariantViolation> {
        self.dirty.check_invariants()?;
        if self.dirty.dirty_count() > core.config.dirty_budget_pages {
            return Err(InvariantViolation::BudgetExceeded {
                dirty: self.dirty.dirty_count(),
                budget: core.config.dirty_budget_pages,
            });
        }
        if core.inflight.len() as u64 != self.dirty.in_flight_count() {
            return Err(InvariantViolation::InFlightListMismatch {
                ios: core.inflight.len() as u64,
                pages: self.dirty.in_flight_count(),
            });
        }
        // Exactly the Dirty-state pages must be writable. A page can only
        // mismatch where either bitmap has a bit set, so comparing the two
        // columns word-by-word over their union skips agreeing-clean space
        // entirely; the first differing bit is the lowest mismatching page.
        let mut mismatch: Option<(u64, bool)> = None;
        self.dirty.dirty_bits().for_each_word_union(
            core.mmu.page_table().writable_bits(),
            |w, dirty, writable| {
                if mismatch.is_none() && dirty != writable {
                    let bit = (dirty ^ writable).trailing_zeros() as u64;
                    let page = w as u64 * 64 + bit;
                    mismatch = Some((page, dirty & (1 << bit) != 0));
                }
            },
        );
        if let Some((page, counted_dirty)) = mismatch {
            return Err(InvariantViolation::ProtectionMismatch {
                page,
                counted_dirty,
            });
        }
        Ok(())
    }

    fn durable_state_consistent(&self, core: &EngineCore) -> bool {
        let (dirty, in_flight) = (self.dirty.dirty_bits(), self.dirty.in_flight_bits());
        // The two bitmaps are disjoint, so a run whose popcounts sum to
        // the run length holds no settled-clean pages: skip it whole.
        let (hd, hf) = (dirty.huge(), in_flight.huge());
        for (_, info) in core.regions.iter() {
            let ok = clean_pages_match(
                core,
                &info,
                |r| hd.run_pop(r) + hf.run_pop(r) == hd.run_len(r),
                |w| dirty.word(w) | in_flight.word(w),
            );
            if !ok {
                return false;
            }
        }
        true
    }

    fn for_each_counted_word(&self, _core: &EngineCore, f: &mut dyn FnMut(usize, u64)) {
        self.dirty
            .dirty_bits()
            .for_each_word_union(self.dirty.in_flight_bits(), |w, d, i| f(w, d | i));
    }
}

/// Pages within `start..end` whose bit is set in any of `maps`, in
/// ascending order. Used to snapshot the interesting pages of a region
/// before a loop that mutates the tracking state.
fn page_range(maps: &[&Bitmap2L], start: usize, end: usize) -> Vec<PageId> {
    let mut pages: Vec<usize> = Vec::new();
    for m in maps {
        m.collect_range_into(start, end, &mut pages);
    }
    pages.sort_unstable();
    pages.dedup();
    pages.into_iter().map(|i| PageId(i as u64)).collect()
}

/// Checks [`page_matches_durable`] for every page of `info` whose bit is
/// *clear* in the word-level `skip_word` mask (bit `b` of `skip_word(w)`
/// covers page `w * 64 + b`), returning `false` on the first mismatch.
/// The mask lets callers exclude legitimately-ahead pages 64 at a time;
/// `skip_run` excludes uniformly-ahead 512-page runs in O(1) each, so
/// dense regions cost O(runs), not O(words).
fn clean_pages_match(
    core: &EngineCore,
    info: &RegionInfo,
    skip_run: impl Fn(usize) -> bool,
    skip_word: impl Fn(usize) -> u64,
) -> bool {
    use mem_sim::bitmap::RUN_PAGES;
    let start = info.first_page.index();
    let end = start + info.pages as usize;
    let mut p = start;
    while p < end {
        if p % RUN_PAGES == 0 && p + RUN_PAGES <= end && skip_run(p / RUN_PAGES) {
            p += RUN_PAGES;
            continue;
        }
        let w = p / 64;
        let word_end = ((w + 1) * 64).min(end);
        let mut bits = !skip_word(w) & (!0u64 << (p % 64));
        if word_end < (w + 1) * 64 {
            bits &= (1u64 << (word_end % 64)) - 1;
        }
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if !page_matches_durable(core, PageId((w * 64 + b) as u64)) {
                return false;
            }
        }
        p = word_end;
    }
    true
}

/// `true` if the in-memory contents of `page` match its durable SSD copy
/// (or are all zero when never written).
fn page_matches_durable(core: &EngineCore, page: PageId) -> bool {
    let mem = core.mmu.page_data(page);
    match core.ssd.page_data(page) {
        Some(durable) => durable == mem,
        None => mem.iter().all(|&b| b == 0),
    }
}

// ----------------------------------------------------------------------
// MmuAssisted: the §5.4 hardware offload
// ----------------------------------------------------------------------

/// The §5.4 hardware offload: the MMU counts dirty-bit transitions
/// itself, raises an interrupt only when the count reaches the OS-set
/// limit, and provides a shadow dirty bit for recency tracking. Writes to
/// clean pages proceed at full speed; traps happen only at the budget
/// boundary.
///
/// The runtime's view of the hardware state is two disjoint bitmaps: a
/// page in `known_dirty` was discovered dirty, a page in `in_flight` is
/// write-protected with a flush IO pending (§5.1's ordering still applies
/// in hardware), and a page in neither is clean and writable.
///
/// `Engine<MmuAssisted>` is [`MmuAssistedViyojit`](crate::MmuAssistedViyojit).
#[derive(Debug)]
pub struct MmuAssisted {
    known_dirty: Bitmap2L,
    in_flight: Bitmap2L,
}

/// Discovery scan over mapped pages: PTE dirty bit set but page not yet
/// known-dirty means it was dirtied silently since the last scan. The
/// scan walks the PTE dirty-bit column word-by-word instead of testing
/// every mapped page, visiting regions in slot order and pages in
/// ascending order within each region — the same order the full scan
/// used, so victim-selection recency is untouched.
fn hw_discover(core: &mut EngineCore, hw: &mut MmuAssisted) -> u64 {
    let mut candidates: Vec<PageId> = Vec::new();
    {
        // Run-classified range collection: uniformly dirty runs of the
        // PTE column arrive as whole ranges, empty runs are skipped, and
        // the already-known filter runs over the collected positions —
        // the same ascending order the word-skipping iterator produced.
        let pte_dirty = core.mmu.page_table().dirty_bits();
        let mut raw: Vec<usize> = Vec::new();
        for (_, info) in core.regions.iter() {
            let start = info.first_page.index();
            let end = start + info.pages as usize;
            raw.clear();
            pte_dirty.collect_range_into(start, end, &mut raw);
            candidates.extend(
                raw.iter()
                    .copied()
                    .filter(|&i| !hw.known_dirty.test(i) && !hw.in_flight.test(i))
                    .map(|i| PageId(i as u64)),
            );
        }
    }
    for &page in &candidates {
        hw.known_dirty.set(page.index());
        core.history.touch(page);
        core.selector.on_dirty(page, &core.history);
        core.stats.pages_dirtied += 1;
        // Power cut mid-scan: this page absorbed into the known-dirty
        // set, later candidates still undiscovered.
        fault_sim::crashpoint!(core.crashes, DiscoveryScan);
    }
    candidates.len() as u64
}

/// Handles the §5.4 dirty-limit interrupt: free one hardware slot by
/// flushing, waiting for completions as needed.
fn handle_limit_interrupt(core: &mut EngineCore, hw: &mut MmuAssisted) {
    let _span = core.profiler.span(CostClass::WpTrap);
    core.stats.faults_handled += 1;
    retire_completions(core, hw);
    let budget = core.config.dirty_budget_pages;
    stall_until_dirty_at_most(core, hw, budget - 1, budget);
}

impl DirtyTracker for MmuAssisted {
    const SYSTEM: &'static str = "Viyojit-MMU";
    const HAS_CONTROL_LOOP: bool = true;
    const TRACKS_PHYSICAL: bool = false;

    fn init(mmu: &mut Mmu, config: &ViyojitConfig, total_pages: usize) -> Self {
        // Pages start writable (no protection pass); the MMU's dirty limit
        // is armed at the budget.
        mmu.set_dirty_limit(Some(config.dirty_budget_pages));
        MmuAssisted {
            known_dirty: Bitmap2L::new(total_pages),
            in_flight: Bitmap2L::new(total_pages),
        }
    }

    fn dirty_count(&self, core: &EngineCore) -> u64 {
        // The hardware dirty counter is the exact budget-bound population.
        core.mmu.dirty_counted()
    }

    fn in_flight_pages(&self) -> u64 {
        self.in_flight.count() as u64
    }

    fn on_write_error(core: &mut EngineCore, backend: &mut Self, err: AccessError) {
        match err {
            AccessError::DirtyLimitReached(_) => handle_limit_interrupt(core, backend),
            AccessError::WriteProtected(page) => {
                // Only in-flight pages are protected in this mode.
                core.stats.in_flight_collisions += 1;
                wait_for_page_io(core, backend, page);
            }
            e @ AccessError::OutOfRange { .. } => {
                unreachable!("resolved addresses are in range: {e}")
            }
        }
    }

    /// Epoch duties: discover newly dirty pages (the OS only learns page
    /// *addresses* by scanning, since dirtying no longer traps), then
    /// refresh recency from shadow bits.
    fn epoch_walk(core: &mut EngineCore, backend: &mut Self) -> (u64, u64) {
        let discovered = hw_discover(core, backend);
        // Shadow walk over known-dirty pages refreshes recency without
        // touching the counter. No full TLB flush is required for
        // correctness here — the shadow bit is only advisory — but the
        // walk flushes when configured, like the software mode.
        let mut known: Vec<PageId> = Vec::new();
        for (_, info) in core.regions.iter() {
            let start = info.first_page.index();
            backend.known_dirty.collect_range_into_map(
                start,
                start + info.pages as usize,
                &mut known,
                |i| PageId(i as u64),
            );
        }
        let options = WalkOptions {
            flush_tlb: core.config.tlb_flush_on_walk,
            charge_costs: false,
        };
        for page in core.mmu.walk_and_clear_shadow(&known, options) {
            core.history.touch(page);
            core.selector.on_touch(page, &core.history);
            core.stats.walk_touches += 1;
        }
        // The discovery scan still covers every mapped page (the summary
        // level just skips clean space), so the walked count it reports is
        // unchanged.
        (core.regions.mapped_pages() + known.len() as u64, discovered)
    }

    fn mark_in_flight(_core: &mut EngineCore, backend: &mut Self, victim: PageId) {
        debug_assert!(backend.known_dirty.test(victim.index()));
        backend.known_dirty.clear(victim.index());
        backend.in_flight.set(victim.index());
    }

    fn flush_payload(
        _core: &mut EngineCore,
        _backend: &mut Self,
        _victim: PageId,
        _data: &[u8],
    ) -> usize {
        // The hardware mode ships full pages (no codec integration).
        PAGE_SIZE
    }

    fn on_flush_complete(core: &mut EngineCore, backend: &mut Self, page: PageId) {
        // Hardware credit: dirty bit cleared, counter decremented; the
        // page becomes writable again with no fault pending.
        core.mmu.credit_dirty_page(page);
        core.mmu.unprotect_page(page);
        backend.in_flight.clear(page.index());
    }

    fn pick_forced_victim(core: &mut EngineCore, backend: &mut Self) -> PageId {
        match core.selector.peek() {
            Some(v) => v,
            None => {
                // The runtime's view lags the hardware: discover now.
                hw_discover(core, backend);
                core.selector
                    .peek()
                    .expect("hardware counts a dirty page the scan cannot find")
            }
        }
    }

    fn on_budget_changed(core: &mut EngineCore, _backend: &mut Self, pages: u64) {
        // Re-arm the hardware limit at the new budget; the engine stalls
        // the population down to it right after.
        core.mmu.set_dirty_limit(Some(pages));
    }

    fn unmap_region(core: &mut EngineCore, backend: &mut Self, info: &RegionInfo) {
        let start = info.first_page.index();
        let end = start + info.pages as usize;
        let waiting: Vec<PageId> = page_range(&[&backend.in_flight], start, end);
        for page in waiting {
            if backend.in_flight.test(page.index()) {
                wait_for_page_io(core, backend, page);
            }
        }
        // Only pages known dirty or with the PTE dirty bit set need any
        // action; snapshot their union before mutating the counter.
        let doomed: Vec<PageId> = page_range(
            &[&backend.known_dirty, core.mmu.page_table().dirty_bits()],
            start,
            end,
        );
        for page in doomed {
            if backend.known_dirty.test(page.index()) {
                core.selector.on_removed(page);
                backend.known_dirty.clear(page.index());
                core.mmu.credit_dirty_page(page);
            } else if core.mmu.page_table().is_dirty(page) {
                // Dirty but not yet discovered: still credit the counter.
                core.mmu.credit_dirty_page(page);
            }
        }
    }

    fn failure_obligation(core: &mut EngineCore, _backend: &mut Self) -> FlushObligation {
        // Everything with the PTE dirty bit set — discovered or not — is
        // ahead of the SSD. The dispatched collection enumerates exactly
        // the pages `iter_dirty_pages` yields, in the same ascending
        // order, taking uniformly dirty runs through the huge tier.
        let mut items: Vec<ObligationItem> = Vec::new();
        core.mmu
            .page_table()
            .dirty_bits()
            .collect_into_map(&mut items, |i| ObligationItem {
                page: PageId(i as u64),
                payload: PAGE_SIZE,
            });
        FlushObligation::full_pages(items)
    }

    fn recover_memory(core: &mut EngineCore, backend: &mut Self) {
        for i in 0..core.mmu.pages() {
            let page = PageId(i as u64);
            match core.ssd.page_data(page) {
                Some(durable) => {
                    let durable = durable.to_vec();
                    core.mmu.page_data_mut(page).copy_from_slice(&durable);
                }
                None => core.mmu.page_data_mut(page).fill(0),
            }
            core.mmu.unprotect_page(page);
        }
        core.mmu.set_dirty_limit(None);
        // Reset dirty/shadow bits so the re-armed counter starts at 0. The
        // per-page stale walks this replaced charged no costs and left the
        // TLB alone (the unprotect pass above already invalidated every
        // entry), so the batch clear is observationally identical.
        core.mmu.clear_dirty_tracking_bits();
        core.mmu
            .set_dirty_limit(Some(core.config.dirty_budget_pages));
        backend.known_dirty.clear_all();
        backend.in_flight.clear_all();
    }

    fn check_invariants(&self, core: &EngineCore) -> Result<(), InvariantViolation> {
        let counted = core.mmu.dirty_counted();
        if counted > core.config.dirty_budget_pages {
            return Err(InvariantViolation::BudgetExceeded {
                dirty: counted,
                budget: core.config.dirty_budget_pages,
            });
        }
        let pte_dirty = core.mmu.page_table().dirty_count() as u64;
        if pte_dirty != counted {
            return Err(InvariantViolation::HardwareCounterMismatch { pte_dirty, counted });
        }
        if core.inflight.len() as u64 != self.in_flight.count() as u64 {
            return Err(InvariantViolation::InFlightListMismatch {
                ios: core.inflight.len() as u64,
                pages: self.in_flight.count() as u64,
            });
        }
        Ok(())
    }

    fn durable_state_consistent(&self, core: &EngineCore) -> bool {
        // Known-dirty, in-flight, and silently-dirtied (PTE bit set but
        // undiscovered) pages are all legitimately ahead of the SSD; only
        // settled-clean pages must match, and the word-level mask skips
        // the rest 64 pages at a time.
        let pte_dirty = core.mmu.page_table().dirty_bits();
        // Any one of the three masks covering a whole run means the run
        // holds no settled-clean pages (the masks are OR-ed, so a Full
        // class in any of them skips the run outright).
        let (hk, hi, hp) = (
            self.known_dirty.huge(),
            self.in_flight.huge(),
            pte_dirty.huge(),
        );
        for (_, info) in core.regions.iter() {
            let ok = clean_pages_match(
                core,
                &info,
                |r| {
                    use mem_sim::RunClass::Full;
                    hp.class(r) == Full || hk.class(r) == Full || hi.class(r) == Full
                },
                |w| self.known_dirty.word(w) | self.in_flight.word(w) | pte_dirty.word(w),
            );
            if !ok {
                return false;
            }
        }
        true
    }

    fn for_each_counted_word(&self, core: &EngineCore, f: &mut dyn FnMut(usize, u64)) {
        // The counted population is the PTE dirty column (which includes
        // silently-dirtied pages) plus in-flight pages whose completions
        // have not yet credited the hardware counter. `known_dirty` is a
        // subset of the PTE column, so two union passes cover everything:
        // words with discovered state, then PTE-only words.
        let pte_dirty = core.mmu.page_table().dirty_bits();
        self.known_dirty
            .for_each_word_union(&self.in_flight, |w, k, i| f(w, k | i | pte_dirty.word(w)));
        pte_dirty.for_each_word(|w, bits| {
            if self.known_dirty.word(w) | self.in_flight.word(w) == 0 {
                f(w, bits);
            }
        });
    }
}

// ----------------------------------------------------------------------
// FullDirty: the full-battery baseline (no tracking at all)
// ----------------------------------------------------------------------

/// The full-battery baseline's non-tracking: every page is presumed
/// dirty, so nothing traps, nothing walks, and a power failure must
/// flush the entire capacity — the scaling problem Viyojit removes.
///
/// `Engine<FullDirty>` underlies [`NvdramBaseline`](crate::NvdramBaseline).
#[derive(Debug)]
pub struct FullDirty;

impl DirtyTracker for FullDirty {
    const SYSTEM: &'static str = "NV-DRAM";
    const HAS_CONTROL_LOOP: bool = false;
    const TRACKS_PHYSICAL: bool = false;

    fn init(_mmu: &mut Mmu, _config: &ViyojitConfig, _total_pages: usize) -> Self {
        FullDirty
    }

    fn dirty_count(&self, _core: &EngineCore) -> u64 {
        0
    }

    fn in_flight_pages(&self) -> u64 {
        0
    }

    fn on_write_error(_core: &mut EngineCore, _backend: &mut Self, err: AccessError) {
        unreachable!("baseline pages are always writable: {err}")
    }

    fn epoch_walk(_core: &mut EngineCore, _backend: &mut Self) -> (u64, u64) {
        unreachable!("the baseline runs no epochs")
    }

    fn mark_in_flight(_core: &mut EngineCore, _backend: &mut Self, _victim: PageId) {
        unreachable!("the baseline issues no flushes")
    }

    fn flush_payload(
        _core: &mut EngineCore,
        _backend: &mut Self,
        _victim: PageId,
        _data: &[u8],
    ) -> usize {
        PAGE_SIZE
    }

    fn on_flush_complete(_core: &mut EngineCore, _backend: &mut Self, _page: PageId) {
        unreachable!("the baseline issues no flushes")
    }

    fn pick_forced_victim(_core: &mut EngineCore, _backend: &mut Self) -> PageId {
        unreachable!("the baseline never stalls on a budget")
    }

    fn unmap_region(_core: &mut EngineCore, _backend: &mut Self, _info: &RegionInfo) {}

    fn failure_obligation(core: &mut EngineCore, _backend: &mut Self) -> FlushObligation {
        // The baseline must assume *everything* could be dirty, so the
        // battery obligation is the entire NV-DRAM capacity. Only mapped
        // pages carry content to submit; the unmapped remainder is durable
        // as-is (all zeroes) but still part of the reported obligation.
        let mut items = Vec::new();
        for (_, info) in core.regions.iter() {
            for page in info.iter_pages() {
                items.push(ObligationItem {
                    page,
                    payload: PAGE_SIZE,
                });
            }
        }
        let obligation_pages = core.mmu.pages() as u64;
        FlushObligation {
            obligation_pages,
            obligation_bytes: obligation_pages * PAGE_SIZE as u64,
            items,
        }
    }

    fn recover_memory(core: &mut EngineCore, _backend: &mut Self) {
        for i in 0..core.mmu.pages() {
            let page = PageId(i as u64);
            match core.ssd.page_data(page) {
                Some(durable) => {
                    let durable = durable.to_vec();
                    core.mmu.page_data_mut(page).copy_from_slice(&durable);
                }
                None => core.mmu.page_data_mut(page).fill(0),
            }
        }
    }

    fn check_invariants(&self, _core: &EngineCore) -> Result<(), InvariantViolation> {
        Ok(())
    }

    fn durable_state_consistent(&self, _core: &EngineCore) -> bool {
        // With no tracking there is no clean-page invariant to check: the
        // baseline treats every page as potentially dirty.
        true
    }

    fn for_each_counted_word(&self, core: &EngineCore, f: &mut dyn FnMut(usize, u64)) {
        // Every mapped page is presumed dirty, so publish full words over
        // each region's page range (edge words get partial masks; callers
        // OR overlapping contributions).
        for (_, info) in core.regions.iter() {
            let start = info.first_page.index();
            let end = start + info.pages as usize;
            let mut w = start / 64;
            while w * 64 < end {
                let lo = (w * 64).max(start) % 64;
                let hi = ((w + 1) * 64).min(end) - w * 64;
                let mask = if hi - lo == 64 {
                    !0
                } else {
                    ((1u64 << (hi - lo)) - 1) << lo
                };
                f(w, mask);
                w += 1;
            }
        }
    }
}
