//! The sharded multi-tenant frontend: N per-shard engines multiplexing
//! one battery's dirty budget.
//!
//! The ROADMAP's scale-out story: a large NV-DRAM space is split into
//! shards, each running its own [`Engine`] over its own slice of memory
//! and SSD, while a [`BudgetArbiter`] periodically re-divides the single
//! battery's dirty budget among them in proportion to observed demand.
//! Regions hash to shards at `map` time, so independent working sets land
//! on independent control loops; the statistical-multiplexing win of
//! §6.3's ballooning accrues between *shards of one workload* instead of
//! between whole tenants.
//!
//! Durability composes the same way it does in
//! [`BalloonedCluster`](crate::BalloonedCluster): every shard enforces
//! its assigned bound at every instant, budgets are shrunk (stalling the
//! shrinking shard down) before any shard grows, and the arbiter never
//! assigns more than the battery provisions — so the cluster-wide dirty
//! population never exceeds the global budget.

use battery_sim::{Battery, PowerModel};
use fault_sim::FaultPlan;
use mem_sim::MmuStats;
use sim_clock::{Clock, CostModel, SimDuration, SimTime};
use ssd_sim::{SsdConfig, SsdStats};
use telemetry::{intern_metric_name, Profiler, Telemetry, TraceEvent};

use crate::{
    FlushOutcome, InvariantViolation, NvHeap, PowerFailureReport, RegionId, ViyojitConfig,
    ViyojitError, ViyojitStats,
};

use super::{BudgetArbiter, DegradationGovernor, DegradedMode, DirtyTracker, Engine, SoftwareWalk};

/// Per-shard metric names, interned once at construction (the registry
/// keys on `&'static str`).
#[derive(Debug)]
struct ShardMetricNames {
    dirty_pages: &'static str,
    budget_pages: &'static str,
    /// Profiler frame name (`shard{i}`) for per-shard span attribution.
    frame: &'static str,
}

/// N Viyojit shards sharing one battery's dirty budget.
///
/// Generic over the same [`DirtyTracker`] backends as [`Engine`]; the
/// default is the software walker, matching [`Viyojit`](crate::Viyojit).
///
/// # Examples
///
/// ```
/// use sim_clock::{Clock, CostModel, SimDuration};
/// use ssd_sim::SsdConfig;
/// use viyojit::{NvHeap, ShardedViyojit, ViyojitConfig};
///
/// let mut nv: ShardedViyojit = ShardedViyojit::new(
///     4,                                   // shards
///     256,                                 // pages per shard
///     ViyojitConfig::with_budget_pages(64), // global budget
///     4,                                   // per-shard floor
///     SimDuration::from_millis(10),        // rebalance period
///     Clock::new(),
///     CostModel::free(),
///     SsdConfig::instant(),
/// );
/// let r = nv.map(4096 * 8)?;
/// nv.write(r, 0, b"routed to one shard's engine")?;
/// assert_eq!(nv.dirty_count(), 1);
/// assert!(nv.dirty_count() <= nv.total_budget_pages());
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
#[derive(Debug)]
pub struct ShardedViyojit<B: DirtyTracker = SoftwareWalk> {
    shards: Vec<Engine<B>>,
    arbiter: BudgetArbiter,
    /// Global region handle -> (shard index, shard-local region id).
    /// Freed slots are `None` and reused.
    routes: Vec<Option<(usize, RegionId)>>,
    clock: Clock,
    rebalance_period: SimDuration,
    next_rebalance_at: SimTime,
    telemetry: Telemetry,
    profiler: Profiler,
    metric_names: Vec<ShardMetricNames>,
}

impl<B: DirtyTracker> ShardedViyojit<B> {
    /// Creates `shards` engines of `pages_per_shard` pages each, sharing
    /// `config.dirty_budget_pages` as the *global* budget. Each shard is
    /// guaranteed at least `min_per_shard` pages; the initial division is
    /// even. The arbiter re-divides the budget by demand every
    /// `rebalance_period` of virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, `min_per_shard` is zero, the floors
    /// exceed the global budget, or `rebalance_period` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        shards: usize,
        pages_per_shard: usize,
        config: ViyojitConfig,
        min_per_shard: u64,
        rebalance_period: SimDuration,
        clock: Clock,
        costs: CostModel,
        ssd_config: SsdConfig,
    ) -> Self {
        assert!(
            rebalance_period > SimDuration::ZERO,
            "the rebalance period must be positive"
        );
        let arbiter = BudgetArbiter::new(shards, config.dirty_budget_pages, min_per_shard);
        let engines: Vec<Engine<B>> = (0..shards)
            .map(|_| {
                let mut shard_config = config.clone();
                shard_config.dirty_budget_pages = arbiter.initial_share();
                Engine::new(
                    pages_per_shard,
                    shard_config,
                    clock.clone(),
                    costs.clone(),
                    ssd_config.clone(),
                )
            })
            .collect();
        let metric_names = (0..shards)
            .map(|i| ShardMetricNames {
                dirty_pages: intern_metric_name(format!("sharded.shard{i}.dirty_pages")),
                budget_pages: intern_metric_name(format!("sharded.shard{i}.budget_pages")),
                frame: intern_metric_name(format!("shard{i}")),
            })
            .collect();
        let next_rebalance_at = clock.now() + rebalance_period;
        ShardedViyojit {
            shards: engines,
            arbiter,
            routes: Vec::new(),
            clock,
            rebalance_period,
            next_rebalance_at,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
            metric_names,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shared access to one shard's engine.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn shard(&self, idx: usize) -> &Engine<B> {
        &self.shards[idx]
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The provisioned global budget.
    pub fn total_budget_pages(&self) -> u64 {
        self.arbiter.total_budget_pages()
    }

    /// Sum of budgets currently assigned to shards. At most the global
    /// budget at every instant.
    pub fn total_assigned(&self) -> u64 {
        self.shards.iter().map(|s| s.dirty_budget()).sum()
    }

    /// Pages counted dirty across all shards.
    pub fn dirty_count(&self) -> u64 {
        self.shards.iter().map(|s| s.dirty_count()).sum()
    }

    /// Budget rebalances performed so far.
    pub fn rebalances(&self) -> u64 {
        self.arbiter.rebalances()
    }

    /// Aggregated runtime counters (field-wise sum over shards).
    pub fn stats(&self) -> ViyojitStats {
        let mut total = ViyojitStats::default();
        for s in self.shards.iter().map(|s| s.stats()) {
            total.faults_handled += s.faults_handled;
            total.pages_dirtied += s.pages_dirtied;
            total.proactive_flushes += s.proactive_flushes;
            total.forced_flushes += s.forced_flushes;
            total.flushes_completed += s.flushes_completed;
            total.budget_stalls += s.budget_stalls;
            total.stall_time += s.stall_time;
            total.in_flight_collisions += s.in_flight_collisions;
            total.epochs += s.epochs;
            total.epochs_fast_forwarded += s.epochs_fast_forwarded;
            total.bytes_flushed += s.bytes_flushed;
            total.physical_bytes_flushed += s.physical_bytes_flushed;
            total.walk_touches += s.walk_touches;
            total.flush_retries += s.flush_retries;
        }
        total
    }

    /// Aggregated MMU access counters.
    pub fn mmu_stats(&self) -> MmuStats {
        let mut total = MmuStats::default();
        for s in self.shards.iter().map(|s| s.mmu_stats()) {
            total.reads += s.reads;
            total.writes += s.writes;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
            total.write_faults += s.write_faults;
            total.pte_dirtied += s.pte_dirtied;
        }
        total
    }

    /// Aggregated SSD counters.
    pub fn ssd_stats(&self) -> SsdStats {
        let mut total = SsdStats::default();
        for s in self.shards.iter().map(|s| s.ssd_stats()) {
            total.writes += s.writes;
            total.reads += s.reads;
            total.bytes_written += s.bytes_written;
            total.bytes_read += s.bytes_read;
            total.write_errors += s.write_errors;
        }
        total
    }

    /// Attaches telemetry to the frontend and every shard.
    ///
    /// All shards publish the standard `viyojit.*` metrics into the one
    /// registry; since counters only move up under `counter_set`, those
    /// read as the *maximum* across shards. The per-shard truth lives in
    /// the `sharded.shardN.*` gauges this frontend publishes at each
    /// rebalance.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        for shard in &mut self.shards {
            shard.attach_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Attaches a virtual-time profiler to the frontend and every shard.
    ///
    /// Shard entry points (routed reads/writes, rebalance budget moves)
    /// are wrapped in per-shard `shard{i}` scopes, so one flamegraph shows
    /// which shard's control loop the virtual time went to — the engine's
    /// own spans nest underneath (`app;shard2;wp_trap;...`).
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        for shard in &mut self.shards {
            shard.attach_profiler(profiler.clone());
        }
        self.profiler = profiler;
    }

    /// Attaches one fault plan to every shard (shards share the plan's
    /// RNG stream; shard order is deterministic, so runs stay reproducible
    /// from the seed).
    pub fn attach_faults(&mut self, faults: FaultPlan) {
        for shard in &mut self.shards {
            shard.attach_faults(faults.clone());
        }
    }

    /// Simulates a global power failure: every shard flushes its counted
    /// dirty pages. The battery obligation is the page *sum* but the drain
    /// *time* is the slowest shard — shards flush to independent SSDs in
    /// parallel.
    pub fn power_failure(&mut self) -> PowerFailureReport {
        self.aggregate_power_failure(|shard| shard.power_failure())
    }

    /// Simulates a global power failure racing one shared battery: each
    /// shard executes its emergency flush against the draining supply (see
    /// [`Engine::power_failure_powered`]); the aggregate keeps the worst
    /// outcome and the smallest energy margin across shards.
    pub fn power_failure_powered(
        &mut self,
        battery: &Battery,
        power: &PowerModel,
    ) -> PowerFailureReport {
        self.aggregate_power_failure(|shard| shard.power_failure_powered(battery, power))
    }

    fn aggregate_power_failure(
        &mut self,
        mut failure: impl FnMut(&mut Engine<B>) -> PowerFailureReport,
    ) -> PowerFailureReport {
        let mut total = PowerFailureReport {
            dirty_pages: 0,
            pages_flushed: 0,
            pages_lost: 0,
            retries: 0,
            bytes_flushed: 0,
            flush_time: SimDuration::ZERO,
            energy_margin_joules: f64::INFINITY,
            outcome: FlushOutcome::Complete,
        };
        for shard in &mut self.shards {
            let r = failure(shard);
            total.dirty_pages += r.dirty_pages;
            total.pages_flushed += r.pages_flushed;
            total.pages_lost += r.pages_lost;
            total.retries += r.retries;
            total.bytes_flushed += r.bytes_flushed;
            total.flush_time = total.flush_time.max(r.flush_time);
            total.energy_margin_joules = total.energy_margin_joules.min(r.energy_margin_joules);
            total.outcome = total.outcome.max(r.outcome);
        }
        total
    }

    /// Re-provisions the global budget at runtime (a §8 re-derivation or
    /// a degradation transition): the arbiter's total changes, then an
    /// immediate rebalance shrinks losers before growing winners, so the
    /// cluster-wide dirty population fits the new budget on return.
    ///
    /// # Panics
    ///
    /// Panics if the per-shard floors no longer fit `pages`.
    pub fn set_total_budget(&mut self, pages: u64) {
        self.arbiter.set_total_budget(pages);
        self.rebalance();
    }

    /// Feeds the degradation governor the cluster-wide signals (reported
    /// battery health plus the summed shard SSD error counters) and, on a
    /// mode transition, applies the prescribed budget through
    /// [`ShardedViyojit::set_total_budget`]. Returns the applied global
    /// budget if a transition happened.
    pub fn govern_degradation(
        &mut self,
        governor: &mut DegradationGovernor,
        reported_health: f64,
    ) -> Option<u64> {
        let ssd = self.ssd_stats();
        let budget = governor.observe(reported_health, &ssd)?;
        let degraded = matches!(governor.mode(), DegradedMode::Degraded(_));
        self.telemetry.emit(|| TraceEvent::DegradedModeChanged {
            degraded,
            budget_pages: budget,
        });
        self.set_total_budget(budget);
        Some(budget)
    }

    /// Recovers every shard from its SSD after a power cycle. Routes
    /// survive (region metadata lives in the flushed superblock, as in
    /// [`Engine::recover`]).
    pub fn recover(&mut self) {
        for shard in &mut self.shards {
            shard.recover();
        }
        self.next_rebalance_at = self.clock.now() + self.rebalance_period;
    }

    /// Checks the cluster-wide invariants: assigned budgets fit the
    /// battery, the global dirty population fits the battery, and every
    /// shard's own invariants hold.
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        self.arbiter.check_assignment(self.total_assigned())?;
        let dirty = self.dirty_count();
        if dirty > self.total_budget_pages() {
            return Err(InvariantViolation::BudgetExceeded {
                dirty,
                budget: self.total_budget_pages(),
            });
        }
        for shard in &self.shards {
            shard.check_invariants()?;
        }
        Ok(())
    }

    /// Panicking wrapper over [`ShardedViyojit::check_invariants`].
    ///
    /// # Panics
    ///
    /// Panics with the violation's `Display` text on any violation.
    pub fn validate(&self) {
        if let Err(violation) = self.check_invariants() {
            panic!("{violation}");
        }
    }

    /// The shard a global region handle routes to, if mapped.
    pub fn shard_of(&self, region: RegionId) -> Option<usize> {
        self.routes
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .map(|&(shard, _)| shard)
    }

    /// Preferred shard for the `n`-th mapping (Fibonacci hashing keeps
    /// consecutive handles well spread).
    fn preferred_shard(&self, slot: usize) -> usize {
        let hash = (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (hash % self.shards.len() as u64) as usize
    }

    fn route(&self, region: RegionId) -> Result<(usize, RegionId), ViyojitError> {
        self.routes
            .get(region.0 as usize)
            .and_then(|r| *r)
            .ok_or(ViyojitError::BadRegion(region))
    }

    /// Runs a rebalance if the virtual clock crossed the boundary, then
    /// fast-forwards the boundary past "now" (one rebalance per gap; the
    /// arbiter sees cumulative demand either way).
    fn maybe_rebalance(&mut self) {
        let now = self.clock.now();
        if now < self.next_rebalance_at {
            return;
        }
        self.rebalance();
        while self.next_rebalance_at <= self.clock.now() {
            self.next_rebalance_at += self.rebalance_period;
        }
    }

    /// Re-divides the global budget by demand: plan from current stats,
    /// shrink the losers (stalling them down to their new bound), grow
    /// the winners, commit the post-apply stats as the next baseline.
    pub fn rebalance(&mut self) {
        let before: Vec<ViyojitStats> = self.shards.iter().map(|s| s.stats()).collect();
        let targets = self.arbiter.plan(&before);
        for (i, (shard, &target)) in self.shards.iter_mut().zip(&targets).enumerate() {
            if target < shard.dirty_budget() {
                let _scope = self.profiler.scope(self.metric_names[i].frame);
                shard.set_dirty_budget(target);
            }
        }
        for (shard, &target) in self.shards.iter_mut().zip(&targets) {
            if target > shard.dirty_budget() {
                shard.set_dirty_budget(target);
            }
        }
        let after: Vec<ViyojitStats> = self.shards.iter().map(|s| s.stats()).collect();
        self.arbiter.commit(&after);
        self.publish_shard_metrics();
    }

    fn publish_shard_metrics(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let rebalances = self.arbiter.rebalances();
        self.telemetry.metrics(|m| {
            m.counter_set("sharded.rebalances", rebalances);
            for (shard, names) in self.shards.iter().zip(&self.metric_names) {
                m.gauge_set(names.dirty_pages, shard.dirty_count() as f64);
                m.gauge_set(names.budget_pages, shard.dirty_budget() as f64);
            }
        });
    }
}

impl<B: DirtyTracker> NvHeap for ShardedViyojit<B> {
    /// Maps a region on the preferred (hashed) shard, probing the other
    /// shards in order when that shard's space is exhausted.
    fn map(&mut self, len_bytes: u64) -> Result<RegionId, ViyojitError> {
        let slot = self
            .routes
            .iter()
            .position(|r| r.is_none())
            .unwrap_or(self.routes.len());
        let preferred = self.preferred_shard(slot);
        let n = self.shards.len();
        let mut last_err = None;
        for probe in 0..n {
            let shard = (preferred + probe) % n;
            match self.shards[shard].map(len_bytes) {
                Ok(local) => {
                    let route = Some((shard, local));
                    if slot == self.routes.len() {
                        self.routes.push(route);
                    } else {
                        self.routes[slot] = route;
                    }
                    return Ok(RegionId(slot as u32));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one shard was probed"))
    }

    fn unmap(&mut self, region: RegionId) -> Result<(), ViyojitError> {
        let (shard, local) = self.route(region)?;
        self.shards[shard].unmap(local)?;
        self.routes[region.0 as usize] = None;
        Ok(())
    }

    fn read(&mut self, region: RegionId, offset: u64, buf: &mut [u8]) -> Result<(), ViyojitError> {
        let (shard, local) = self.route(region)?;
        {
            let _scope = self.profiler.scope(self.metric_names[shard].frame);
            self.shards[shard].read(local, offset, buf)?;
        }
        self.maybe_rebalance();
        Ok(())
    }

    fn write(&mut self, region: RegionId, offset: u64, data: &[u8]) -> Result<(), ViyojitError> {
        let (shard, local) = self.route(region)?;
        {
            let _scope = self.profiler.scope(self.metric_names[shard].frame);
            self.shards[shard].write(local, offset, data)?;
        }
        self.maybe_rebalance();
        Ok(())
    }

    fn region_len(&self, region: RegionId) -> Result<u64, ViyojitError> {
        let (shard, local) = self.route(region)?;
        self.shards[shard].region_len(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mem_sim::PAGE_SIZE;

    fn cluster(shards: usize, budget: u64) -> ShardedViyojit {
        ShardedViyojit::new(
            shards,
            256,
            ViyojitConfig::with_budget_pages(budget),
            2,
            SimDuration::from_millis(1),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        )
    }

    #[test]
    fn regions_spread_across_shards_and_round_trip() {
        let mut nv = cluster(4, 64);
        let regions: Vec<RegionId> = (0..8)
            .map(|_| nv.map(PAGE_SIZE as u64 * 4).unwrap())
            .collect();
        let used: std::collections::HashSet<usize> =
            regions.iter().map(|&r| nv.shard_of(r).unwrap()).collect();
        assert!(used.len() > 1, "hashing should use more than one shard");
        for (i, &r) in regions.iter().enumerate() {
            nv.write(r, 0, &[i as u8; 64]).unwrap();
        }
        let mut buf = [0u8; 64];
        for (i, &r) in regions.iter().enumerate() {
            nv.read(r, 0, &mut buf).unwrap();
            assert_eq!(buf, [i as u8; 64]);
        }
        nv.validate();
    }

    #[test]
    fn unmapped_slots_are_reused() {
        let mut nv = cluster(2, 16);
        let a = nv.map(PAGE_SIZE as u64).unwrap();
        let b = nv.map(PAGE_SIZE as u64).unwrap();
        nv.unmap(a).unwrap();
        assert!(matches!(
            nv.read(a, 0, &mut [0u8; 1]),
            Err(ViyojitError::BadRegion(_))
        ));
        let c = nv.map(PAGE_SIZE as u64).unwrap();
        assert_eq!(c, a, "freed route slots are reused");
        nv.write(b, 0, b"x").unwrap();
        nv.write(c, 0, b"y").unwrap();
        nv.validate();
    }

    #[test]
    fn map_probes_past_a_full_shard() {
        // Two tiny shards: one large mapping fills the preferred shard,
        // the next must land on the other.
        let mut nv = ShardedViyojit::<SoftwareWalk>::new(
            2,
            8,
            ViyojitConfig::with_budget_pages(8),
            2,
            SimDuration::from_millis(1),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let a = nv.map(PAGE_SIZE as u64 * 8).unwrap();
        let b = nv.map(PAGE_SIZE as u64 * 8).unwrap();
        assert_ne!(nv.shard_of(a), nv.shard_of(b));
        let c = nv.map(PAGE_SIZE as u64);
        assert!(matches!(c, Err(ViyojitError::OutOfSpace { .. })));
    }

    #[test]
    fn rebalance_conserves_the_global_budget() {
        let mut nv = cluster(4, 64);
        let r = nv.map(PAGE_SIZE as u64 * 32).unwrap();
        for i in 0..32u64 {
            nv.write(r, i * PAGE_SIZE as u64, &[1]).unwrap();
        }
        nv.rebalance();
        assert_eq!(nv.total_assigned(), 64);
        assert!(nv.rebalances() >= 1);
        nv.validate();
    }

    #[test]
    fn dirty_total_never_exceeds_the_battery() {
        let mut nv = cluster(4, 16);
        let regions: Vec<RegionId> = (0..4)
            .map(|_| nv.map(PAGE_SIZE as u64 * 32).unwrap())
            .collect();
        for round in 0..64u64 {
            for &r in &regions {
                let page = (round * 7) % 32;
                nv.write(r, page * PAGE_SIZE as u64, &[round as u8])
                    .unwrap();
                assert!(nv.dirty_count() <= nv.total_budget_pages());
            }
        }
        nv.validate();
        let report = nv.power_failure();
        assert!(report.dirty_pages <= nv.total_budget_pages());
    }

    #[test]
    fn recovery_restores_every_shard() {
        let mut nv = cluster(2, 8);
        let r = nv.map(PAGE_SIZE as u64 * 4).unwrap();
        nv.write(r, 0, b"durable across the cycle").unwrap();
        nv.power_failure();
        nv.recover();
        let mut buf = [0u8; 24];
        nv.read(r, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"durable across the cycle");
        nv.validate();
    }
}
