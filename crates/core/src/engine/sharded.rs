//! The sharded multi-tenant frontend: N per-shard engines multiplexing
//! one battery's dirty budget.
//!
//! The ROADMAP's scale-out story: a large NV-DRAM space is split into
//! shards, each running its own [`Engine`] over its own slice of memory
//! and SSD, while a [`BudgetArbiter`] periodically re-divides the single
//! battery's dirty budget among them in proportion to observed demand.
//! Regions hash to shards at `map` time, so independent working sets land
//! on independent control loops; the statistical-multiplexing win of
//! §6.3's ballooning accrues between *shards of one workload* instead of
//! between whole tenants.
//!
//! Durability composes the same way it does in
//! [`BalloonedCluster`](crate::BalloonedCluster): every shard enforces
//! its assigned bound at every instant, budgets are shrunk (stalling the
//! shrinking shard down) before any shard grows, and the arbiter never
//! assigns more than the battery provisions — so the cluster-wide dirty
//! population never exceeds the global budget.

use battery_sim::{Battery, PowerModel};
use fault_sim::FaultPlan;
use mem_sim::MmuStats;
use sim_clock::{Clock, CostModel, SimDuration, SimTime};
use ssd_sim::{SsdConfig, SsdStats};
use telemetry::{intern_metric_name, Profiler, Telemetry, TraceEvent};

use crate::{
    FlushOutcome, InvariantViolation, NvHeap, PowerFailureReport, RegionId, ViyojitConfig,
    ViyojitError, ViyojitStats,
};

use super::plane::{ShardControlPlane, ShardDataPlane};
use super::{BudgetArbiter, DegradationGovernor, DegradedMode, DirtyTracker, Engine, SoftwareWalk};

/// Per-shard metric names, interned once at construction (the registry
/// keys on `&'static str`).
#[derive(Debug)]
struct ShardMetricNames {
    dirty_pages: &'static str,
    budget_pages: &'static str,
    /// Profiler frame name (`shard{i}`) for per-shard span attribution.
    frame: &'static str,
}

/// N Viyojit shards sharing one battery's dirty budget.
///
/// Generic over the same [`DirtyTracker`] backends as [`Engine`]; the
/// default is the software walker, matching [`Viyojit`](crate::Viyojit).
///
/// # Examples
///
/// ```
/// use sim_clock::SimDuration;
/// use viyojit::{NvHeap, ShardedViyojitBuilder, ViyojitConfig};
///
/// let mut nv = ShardedViyojitBuilder::new(4, 256, ViyojitConfig::with_budget_pages(64))
///     .min_per_shard(4)
///     .rebalance_period(SimDuration::from_millis(10))
///     .build_sequential()?;
/// let r = nv.map(4096 * 8)?;
/// nv.write(r, 0, b"routed to one shard's engine")?;
/// assert_eq!(nv.dirty_count(), 1);
/// assert!(nv.dirty_count() <= nv.total_budget_pages());
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
#[derive(Debug)]
pub struct ShardedViyojit<B: DirtyTracker = SoftwareWalk> {
    shards: Vec<Engine<B>>,
    arbiter: BudgetArbiter,
    /// Global region handle -> (shard index, shard-local region id).
    /// Freed slots are `None` and reused.
    routes: Vec<Option<(usize, RegionId)>>,
    clock: Clock,
    rebalance_period: SimDuration,
    next_rebalance_at: SimTime,
    telemetry: Telemetry,
    profiler: Profiler,
    metric_names: Vec<ShardMetricNames>,
}

impl<B: DirtyTracker> ShardedViyojit<B> {
    /// Creates `shards` engines of `pages_per_shard` pages each, sharing
    /// `config.dirty_budget_pages` as the *global* budget. Each shard is
    /// guaranteed at least `min_per_shard` pages; the initial division is
    /// even. The arbiter re-divides the budget by demand every
    /// `rebalance_period` of virtual time.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, `min_per_shard` is zero, the floors
    /// exceed the global budget, or `rebalance_period` is zero.
    #[allow(clippy::too_many_arguments)]
    #[deprecated(
        since = "0.7.0",
        note = "use ShardedViyojitBuilder::new(..).build_sequential() — it validates \
                instead of panicking and consumes attachments up front"
    )]
    pub fn new(
        shards: usize,
        pages_per_shard: usize,
        config: ViyojitConfig,
        min_per_shard: u64,
        rebalance_period: SimDuration,
        clock: Clock,
        costs: CostModel,
        ssd_config: SsdConfig,
    ) -> Self {
        assert!(
            rebalance_period > SimDuration::ZERO,
            "the rebalance period must be positive"
        );
        Self::assemble(
            shards,
            pages_per_shard,
            config,
            min_per_shard,
            rebalance_period,
            clock,
            costs,
            ssd_config,
        )
    }

    /// Shared construction body of the deprecated `new` and
    /// [`ShardedViyojitBuilder::build_sequential`]; the builder validates
    /// before calling so the arbiter's own asserts cannot fire.
    ///
    /// [`ShardedViyojitBuilder::build_sequential`]:
    ///     super::ShardedViyojitBuilder::build_sequential
    #[allow(clippy::too_many_arguments)]
    pub(super) fn assemble(
        shards: usize,
        pages_per_shard: usize,
        config: ViyojitConfig,
        min_per_shard: u64,
        rebalance_period: SimDuration,
        clock: Clock,
        costs: CostModel,
        ssd_config: SsdConfig,
    ) -> Self {
        let arbiter = BudgetArbiter::new(shards, config.dirty_budget_pages, min_per_shard);
        let engines: Vec<Engine<B>> = (0..shards)
            .map(|_| {
                let mut shard_config = config.clone();
                shard_config.dirty_budget_pages = arbiter.initial_share();
                Engine::new(
                    pages_per_shard,
                    shard_config,
                    clock.clone(),
                    costs.clone(),
                    ssd_config.clone(),
                )
            })
            .collect();
        let metric_names = (0..shards)
            .map(|i| ShardMetricNames {
                dirty_pages: intern_metric_name(format!("sharded.shard{i}.dirty_pages")),
                budget_pages: intern_metric_name(format!("sharded.shard{i}.budget_pages")),
                frame: intern_metric_name(format!("shard{i}")),
            })
            .collect();
        let next_rebalance_at = clock.now() + rebalance_period;
        ShardedViyojit {
            shards: engines,
            arbiter,
            routes: Vec::new(),
            clock,
            rebalance_period,
            next_rebalance_at,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
            metric_names,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shared access to one shard's engine.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn shard(&self, idx: usize) -> &Engine<B> {
        &self.shards[idx]
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The provisioned global budget.
    pub fn total_budget_pages(&self) -> u64 {
        self.arbiter.total_budget_pages()
    }

    /// Sum of budgets currently assigned to shards. At most the global
    /// budget at every instant.
    pub fn total_assigned(&self) -> u64 {
        self.shards.iter().map(|s| s.dirty_budget()).sum()
    }

    /// Pages counted dirty across all shards.
    pub fn dirty_count(&self) -> u64 {
        self.shards.iter().map(|s| s.dirty_count()).sum()
    }

    /// Budget rebalances performed so far.
    pub fn rebalances(&self) -> u64 {
        self.arbiter.rebalances()
    }

    /// Aggregated runtime counters (field-wise sum over shards).
    pub fn stats(&self) -> ViyojitStats {
        let mut total = ViyojitStats::default();
        for s in self.shards.iter().map(|s| s.stats()) {
            total.faults_handled += s.faults_handled;
            total.pages_dirtied += s.pages_dirtied;
            total.proactive_flushes += s.proactive_flushes;
            total.forced_flushes += s.forced_flushes;
            total.flushes_completed += s.flushes_completed;
            total.budget_stalls += s.budget_stalls;
            total.stall_time += s.stall_time;
            total.in_flight_collisions += s.in_flight_collisions;
            total.epochs += s.epochs;
            total.epochs_fast_forwarded += s.epochs_fast_forwarded;
            total.bytes_flushed += s.bytes_flushed;
            total.physical_bytes_flushed += s.physical_bytes_flushed;
            total.walk_touches += s.walk_touches;
            total.flush_retries += s.flush_retries;
        }
        total
    }

    /// Aggregated MMU access counters.
    pub fn mmu_stats(&self) -> MmuStats {
        let mut total = MmuStats::default();
        for s in self.shards.iter().map(|s| s.mmu_stats()) {
            total.reads += s.reads;
            total.writes += s.writes;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
            total.write_faults += s.write_faults;
            total.pte_dirtied += s.pte_dirtied;
        }
        total
    }

    /// Aggregated SSD counters.
    pub fn ssd_stats(&self) -> SsdStats {
        let mut total = SsdStats::default();
        for s in self.shards.iter().map(|s| s.ssd_stats()) {
            total.writes += s.writes;
            total.reads += s.reads;
            total.bytes_written += s.bytes_written;
            total.bytes_read += s.bytes_read;
            total.write_errors += s.write_errors;
        }
        total
    }

    /// Attaches telemetry to the frontend and every shard.
    ///
    /// All shards publish the standard `viyojit.*` metrics into the one
    /// registry; since counters only move up under `counter_set`, those
    /// read as the *maximum* across shards. The per-shard truth lives in
    /// the `sharded.shardN.*` gauges this frontend publishes at each
    /// rebalance.
    #[deprecated(
        since = "0.7.0",
        note = "use ShardedViyojitBuilder::telemetry(..) so attachments are \
                consumed before anything runs"
    )]
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.install_telemetry(telemetry);
    }

    pub(crate) fn install_telemetry(&mut self, telemetry: Telemetry) {
        for shard in &mut self.shards {
            shard.attach_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Attaches a virtual-time profiler to the frontend and every shard.
    ///
    /// Shard entry points (routed reads/writes, rebalance budget moves)
    /// are wrapped in per-shard `shard{i}` scopes, so one flamegraph shows
    /// which shard's control loop the virtual time went to — the engine's
    /// own spans nest underneath (`app;shard2;wp_trap;...`).
    #[deprecated(
        since = "0.7.0",
        note = "use ShardedViyojitBuilder::profiler(..) so attachments are \
                consumed before anything runs"
    )]
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        self.install_profiler(profiler);
    }

    pub(crate) fn install_profiler(&mut self, profiler: Profiler) {
        for shard in &mut self.shards {
            shard.attach_profiler(profiler.clone());
        }
        self.profiler = profiler;
    }

    /// Attaches one fault plan to every shard (shards share the plan's
    /// RNG stream; shard order is deterministic, so runs stay reproducible
    /// from the seed).
    #[deprecated(
        since = "0.7.0",
        note = "use ShardedViyojitBuilder::faults(..) so attachments are \
                consumed before anything runs"
    )]
    pub fn attach_faults(&mut self, faults: FaultPlan) {
        self.install_faults(faults);
    }

    pub(crate) fn install_faults(&mut self, faults: FaultPlan) {
        for shard in &mut self.shards {
            shard.attach_faults(faults.clone());
        }
    }

    /// Simulates a global power failure: every shard flushes its counted
    /// dirty pages. The battery obligation is the page *sum* but the drain
    /// *time* is the slowest shard — shards flush to independent SSDs in
    /// parallel.
    pub fn power_failure(&mut self) -> PowerFailureReport {
        self.aggregate_power_failure(|shard| shard.power_failure())
    }

    /// Simulates a global power failure racing one shared battery: each
    /// shard executes its emergency flush against the draining supply (see
    /// [`Engine::power_failure_powered`]); the aggregate keeps the worst
    /// outcome and the smallest energy margin across shards.
    pub fn power_failure_powered(
        &mut self,
        battery: &Battery,
        power: &PowerModel,
    ) -> PowerFailureReport {
        self.aggregate_power_failure(|shard| shard.power_failure_powered(battery, power))
    }

    fn aggregate_power_failure(
        &mut self,
        mut failure: impl FnMut(&mut Engine<B>) -> PowerFailureReport,
    ) -> PowerFailureReport {
        let mut total = PowerFailureReport {
            dirty_pages: 0,
            pages_flushed: 0,
            pages_lost: 0,
            retries: 0,
            bytes_flushed: 0,
            flush_time: SimDuration::ZERO,
            energy_margin_joules: f64::INFINITY,
            outcome: FlushOutcome::Complete,
        };
        for shard in &mut self.shards {
            let r = failure(shard);
            total.dirty_pages += r.dirty_pages;
            total.pages_flushed += r.pages_flushed;
            total.pages_lost += r.pages_lost;
            total.retries += r.retries;
            total.bytes_flushed += r.bytes_flushed;
            total.flush_time = total.flush_time.max(r.flush_time);
            total.energy_margin_joules = total.energy_margin_joules.min(r.energy_margin_joules);
            total.outcome = total.outcome.max(r.outcome);
        }
        total
    }

    /// Re-provisions the global budget at runtime (a §8 re-derivation or
    /// a degradation transition): the arbiter's total changes, then an
    /// immediate rebalance shrinks losers before growing winners, so the
    /// cluster-wide dirty population fits the new budget on return.
    ///
    /// # Panics
    ///
    /// Panics if the per-shard floors no longer fit `pages`.
    pub fn set_total_budget(&mut self, pages: u64) {
        self.arbiter.set_total_budget(pages);
        self.rebalance();
    }

    /// Feeds the degradation governor the cluster-wide signals (reported
    /// battery health plus the summed shard SSD error counters) and, on a
    /// mode transition, applies the prescribed budget through
    /// [`ShardedViyojit::set_total_budget`]. Returns the applied global
    /// budget if a transition happened.
    pub fn govern_degradation(
        &mut self,
        governor: &mut DegradationGovernor,
        reported_health: f64,
    ) -> Option<u64> {
        let ssd = self.ssd_stats();
        let budget = governor.observe(reported_health, &ssd)?;
        let degraded = matches!(governor.mode(), DegradedMode::Degraded(_));
        self.telemetry.emit(|| TraceEvent::DegradedModeChanged {
            degraded,
            budget_pages: budget,
        });
        self.set_total_budget(budget);
        Some(budget)
    }

    /// Recovers every shard from its SSD after a power cycle. Routes
    /// survive (region metadata lives in the flushed superblock, as in
    /// [`Engine::recover`]).
    pub fn recover(&mut self) {
        for shard in &mut self.shards {
            shard.recover();
        }
        self.next_rebalance_at = self.clock.now() + self.rebalance_period;
    }

    /// Checks the cluster-wide invariants: assigned budgets fit the
    /// battery, the global dirty population fits the battery, and every
    /// shard's own invariants hold.
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        self.arbiter.check_assignment(self.total_assigned())?;
        let dirty = self.dirty_count();
        if dirty > self.total_budget_pages() {
            return Err(InvariantViolation::BudgetExceeded {
                dirty,
                budget: self.total_budget_pages(),
            });
        }
        for shard in &self.shards {
            shard.check_invariants()?;
        }
        Ok(())
    }

    /// Panicking wrapper over [`ShardedViyojit::check_invariants`].
    ///
    /// # Panics
    ///
    /// Panics with the violation's `Display` text on any violation.
    pub fn validate(&self) {
        if let Err(violation) = self.check_invariants() {
            panic!("{violation}");
        }
    }

    /// The shard a global region handle routes to, if mapped.
    pub fn shard_of(&self, region: RegionId) -> Option<usize> {
        self.routes
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .map(|&(shard, _)| shard)
    }

    /// Preferred shard for the `n`-th mapping (Fibonacci hashing keeps
    /// consecutive handles well spread).
    fn preferred_shard(&self, slot: usize) -> usize {
        let hash = (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (hash % self.shards.len() as u64) as usize
    }

    fn route(&self, region: RegionId) -> Result<(usize, RegionId), ViyojitError> {
        self.routes
            .get(region.0 as usize)
            .and_then(|r| *r)
            .ok_or(ViyojitError::BadRegion(region))
    }

    /// Runs a rebalance if the virtual clock crossed the boundary, then
    /// fast-forwards the boundary past "now" (one rebalance per gap; the
    /// arbiter sees cumulative demand either way).
    fn maybe_rebalance(&mut self) {
        let now = self.clock.now();
        if now < self.next_rebalance_at {
            return;
        }
        self.rebalance();
        while self.next_rebalance_at <= self.clock.now() {
            self.next_rebalance_at += self.rebalance_period;
        }
    }

    /// Re-divides the global budget by demand: plan from current stats,
    /// shrink the losers (stalling them down to their new bound), grow
    /// the winners, commit the post-apply stats as the next baseline.
    pub fn rebalance(&mut self) {
        let before: Vec<ViyojitStats> = self.shards.iter().map(|s| s.stats()).collect();
        let targets = self.arbiter.plan(&before);
        for (i, (shard, &target)) in self.shards.iter_mut().zip(&targets).enumerate() {
            if target < shard.dirty_budget() {
                let _scope = self.profiler.scope(self.metric_names[i].frame);
                shard.set_dirty_budget(target);
            }
        }
        for (shard, &target) in self.shards.iter_mut().zip(&targets) {
            if target > shard.dirty_budget() {
                shard.set_dirty_budget(target);
            }
        }
        let after: Vec<ViyojitStats> = self.shards.iter().map(|s| s.stats()).collect();
        self.arbiter.commit(&after);
        self.publish_shard_metrics();
    }

    fn publish_shard_metrics(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let rebalances = self.arbiter.rebalances();
        self.telemetry.metrics(|m| {
            m.counter_set("sharded.rebalances", rebalances);
            for (shard, names) in self.shards.iter().zip(&self.metric_names) {
                m.gauge_set(names.dirty_pages, shard.dirty_count() as f64);
                m.gauge_set(names.budget_pages, shard.dirty_budget() as f64);
            }
        });
    }
}

impl<B: DirtyTracker> NvHeap for ShardedViyojit<B> {
    /// Maps a region on the preferred (hashed) shard, probing the other
    /// shards in order when that shard's space is exhausted.
    fn map(&mut self, len_bytes: u64) -> Result<RegionId, ViyojitError> {
        let slot = self
            .routes
            .iter()
            .position(|r| r.is_none())
            .unwrap_or(self.routes.len());
        let preferred = self.preferred_shard(slot);
        let n = self.shards.len();
        let mut last_err = None;
        for probe in 0..n {
            let shard = (preferred + probe) % n;
            match self.shards[shard].map(len_bytes) {
                Ok(local) => {
                    let route = Some((shard, local));
                    if slot == self.routes.len() {
                        self.routes.push(route);
                    } else {
                        self.routes[slot] = route;
                    }
                    return Ok(RegionId(slot as u32));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one shard was probed"))
    }

    fn unmap(&mut self, region: RegionId) -> Result<(), ViyojitError> {
        let (shard, local) = self.route(region)?;
        self.shards[shard].unmap(local)?;
        self.routes[region.0 as usize] = None;
        Ok(())
    }

    fn read(&mut self, region: RegionId, offset: u64, buf: &mut [u8]) -> Result<(), ViyojitError> {
        let (shard, local) = self.route(region)?;
        {
            let _scope = self.profiler.scope(self.metric_names[shard].frame);
            self.shards[shard].read(local, offset, buf)?;
        }
        self.maybe_rebalance();
        Ok(())
    }

    fn write(&mut self, region: RegionId, offset: u64, data: &[u8]) -> Result<(), ViyojitError> {
        let (shard, local) = self.route(region)?;
        {
            let _scope = self.profiler.scope(self.metric_names[shard].frame);
            self.shards[shard].write(local, offset, data)?;
        }
        self.maybe_rebalance();
        Ok(())
    }

    fn region_len(&self, region: RegionId) -> Result<u64, ViyojitError> {
        let (shard, local) = self.route(region)?;
        self.shards[shard].region_len(local)
    }
}

impl<B: DirtyTracker> ShardDataPlane for ShardedViyojit<B> {
    /// Advances the shared virtual clock and runs a rebalance if the
    /// period boundary was crossed — equivalent to the historical pattern
    /// of `clock.advance(d)` followed by the next routed access.
    fn step(&mut self, d: SimDuration) -> Result<(), ViyojitError> {
        self.clock.advance(d);
        self.maybe_rebalance();
        Ok(())
    }

    /// The sequential frontend buffers nothing; always `Ok`.
    fn sync(&mut self) -> Result<(), ViyojitError> {
        Ok(())
    }
}

impl<B: DirtyTracker> ShardControlPlane for ShardedViyojit<B> {
    fn rebalance(&mut self) -> Result<(), ViyojitError> {
        ShardedViyojit::rebalance(self);
        Ok(())
    }

    fn set_total_budget(&mut self, pages: u64) -> Result<(), ViyojitError> {
        if self.arbiter.min_per_member() * self.shards.len() as u64 > pages {
            return Err(ViyojitError::InvalidConfig(
                "per-shard floors exceed the re-provisioned budget",
            ));
        }
        ShardedViyojit::set_total_budget(self, pages);
        Ok(())
    }

    fn govern_degradation(
        &mut self,
        governor: &mut DegradationGovernor,
        reported_health: f64,
    ) -> Result<Option<u64>, ViyojitError> {
        Ok(ShardedViyojit::govern_degradation(
            self,
            governor,
            reported_health,
        ))
    }

    fn power_failure(&mut self) -> Result<PowerFailureReport, ViyojitError> {
        Ok(ShardedViyojit::power_failure(self))
    }

    fn power_failure_powered(
        &mut self,
        battery: &Battery,
        power: &PowerModel,
    ) -> Result<PowerFailureReport, ViyojitError> {
        Ok(ShardedViyojit::power_failure_powered(self, battery, power))
    }

    fn recover(&mut self) -> Result<(), ViyojitError> {
        ShardedViyojit::recover(self);
        Ok(())
    }

    fn stats(&mut self) -> Result<ViyojitStats, ViyojitError> {
        Ok(ShardedViyojit::stats(self))
    }

    fn dirty_count(&mut self) -> Result<u64, ViyojitError> {
        Ok(ShardedViyojit::dirty_count(self))
    }

    fn total_budget_pages(&self) -> u64 {
        ShardedViyojit::total_budget_pages(self)
    }

    fn rebalances(&mut self) -> Result<u64, ViyojitError> {
        Ok(ShardedViyojit::rebalances(self))
    }

    fn check_invariants(&mut self) -> Result<(), ViyojitError> {
        ShardedViyojit::check_invariants(self).map_err(ViyojitError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::super::ShardedViyojitBuilder;
    use super::*;
    use mem_sim::PAGE_SIZE;

    fn cluster(shards: usize, budget: u64) -> Result<ShardedViyojit, ViyojitError> {
        ShardedViyojitBuilder::new(shards, 256, ViyojitConfig::with_budget_pages(budget))
            .min_per_shard(2)
            .rebalance_period(SimDuration::from_millis(1))
            .build_sequential()
    }

    #[test]
    fn regions_spread_across_shards_and_round_trip() -> Result<(), ViyojitError> {
        let mut nv = cluster(4, 64)?;
        let regions = (0..8)
            .map(|_| nv.map(PAGE_SIZE as u64 * 4))
            .collect::<Result<Vec<RegionId>, ViyojitError>>()?;
        let used: std::collections::HashSet<usize> =
            regions.iter().filter_map(|&r| nv.shard_of(r)).collect();
        assert!(used.len() > 1, "hashing should use more than one shard");
        for (i, &r) in regions.iter().enumerate() {
            nv.write(r, 0, &[i as u8; 64])?;
        }
        let mut buf = [0u8; 64];
        for (i, &r) in regions.iter().enumerate() {
            nv.read(r, 0, &mut buf)?;
            assert_eq!(buf, [i as u8; 64]);
        }
        nv.check_invariants().map_err(ViyojitError::from)
    }

    #[test]
    fn unmapping_yields_a_typed_bad_region_and_frees_the_slot() -> Result<(), ViyojitError> {
        let mut nv = cluster(2, 16)?;
        let a = nv.map(PAGE_SIZE as u64)?;
        let b = nv.map(PAGE_SIZE as u64)?;
        nv.unmap(a)?;
        assert_eq!(
            nv.read(a, 0, &mut [0u8; 1]),
            Err(ViyojitError::BadRegion(a)),
            "a freed handle must name itself in the error"
        );
        let c = nv.map(PAGE_SIZE as u64)?;
        assert_eq!(c, a, "freed route slots are reused");
        nv.write(b, 0, b"x")?;
        nv.write(c, 0, b"y")?;
        nv.check_invariants().map_err(ViyojitError::from)
    }

    #[test]
    fn map_probes_past_a_full_shard_then_reports_out_of_space() -> Result<(), ViyojitError> {
        // Two tiny shards: one large mapping fills the preferred shard,
        // the next must land on the other; a third finds no free run
        // anywhere and the error carries the exact shortfall.
        let mut nv = ShardedViyojitBuilder::new(2, 8, ViyojitConfig::with_budget_pages(8))
            .min_per_shard(2)
            .rebalance_period(SimDuration::from_millis(1))
            .build_sequential()?;
        let a = nv.map(PAGE_SIZE as u64 * 8)?;
        let b = nv.map(PAGE_SIZE as u64 * 8)?;
        assert_ne!(nv.shard_of(a), nv.shard_of(b));
        assert_eq!(
            nv.map(PAGE_SIZE as u64),
            Err(ViyojitError::OutOfSpace {
                requested_pages: 1,
                largest_free_run: 0,
            })
        );
        Ok(())
    }

    #[test]
    fn rebalance_conserves_the_global_budget() -> Result<(), ViyojitError> {
        let mut nv = cluster(4, 64)?;
        let r = nv.map(PAGE_SIZE as u64 * 32)?;
        for i in 0..32u64 {
            nv.write(r, i * PAGE_SIZE as u64, &[1])?;
        }
        nv.rebalance();
        assert_eq!(nv.total_assigned(), 64);
        assert!(nv.rebalances() >= 1);
        nv.check_invariants().map_err(ViyojitError::from)
    }

    #[test]
    fn dirty_total_never_exceeds_the_battery() -> Result<(), ViyojitError> {
        let mut nv = cluster(4, 16)?;
        let regions = (0..4)
            .map(|_| nv.map(PAGE_SIZE as u64 * 32))
            .collect::<Result<Vec<RegionId>, ViyojitError>>()?;
        for round in 0..64u64 {
            for &r in &regions {
                let page = (round * 7) % 32;
                nv.write(r, page * PAGE_SIZE as u64, &[round as u8])?;
                assert!(nv.dirty_count() <= nv.total_budget_pages());
            }
        }
        nv.check_invariants()?;
        let report = nv.power_failure();
        assert!(report.dirty_pages <= nv.total_budget_pages());
        Ok(())
    }

    #[test]
    fn recovery_restores_every_shard() -> Result<(), ViyojitError> {
        let mut nv = cluster(2, 8)?;
        let r = nv.map(PAGE_SIZE as u64 * 4)?;
        nv.write(r, 0, b"durable across the cycle")?;
        nv.power_failure();
        nv.recover();
        let mut buf = [0u8; 24];
        nv.read(r, 0, &mut buf)?;
        assert_eq!(&buf, b"durable across the cycle");
        nv.check_invariants().map_err(ViyojitError::from)
    }

    #[test]
    fn step_crosses_rebalance_boundaries_like_routed_accesses() -> Result<(), ViyojitError> {
        let mut nv = cluster(2, 16)?;
        assert_eq!(ShardControlPlane::rebalances(&mut nv)?, 0);
        ShardDataPlane::step(&mut nv, SimDuration::from_millis(5))?;
        assert_eq!(
            ShardControlPlane::rebalances(&mut nv)?,
            1,
            "one rebalance per gap, however many boundaries it spans"
        );
        ShardDataPlane::sync(&mut nv)?;
        ShardDataPlane::step(&mut nv, SimDuration::from_micros(10))?;
        assert_eq!(ShardControlPlane::rebalances(&mut nv)?, 1);
        Ok(())
    }

    #[test]
    fn control_plane_rejects_budgets_below_the_floors() -> Result<(), ViyojitError> {
        let mut nv = cluster(4, 64)?;
        let err = ShardControlPlane::set_total_budget(&mut nv, 7)
            .expect_err("4 shards with floor 2 cannot fit 7 pages");
        assert!(matches!(err, ViyojitError::InvalidConfig(_)));
        assert_eq!(ShardControlPlane::total_budget_pages(&nv), 64);
        ShardControlPlane::set_total_budget(&mut nv, 8)?;
        assert_eq!(ShardControlPlane::total_budget_pages(&nv), 8);
        Ok(())
    }
}
