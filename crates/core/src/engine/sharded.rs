//! The sharded multi-tenant frontend: N per-shard engines multiplexing
//! one battery's dirty budget.
//!
//! The ROADMAP's scale-out story: a large NV-DRAM space is split into
//! shards, each running its own [`Engine`] over its own slice of memory
//! and SSD, while a [`BudgetTree`] periodically re-divides the single
//! battery's dirty budget among them in proportion to observed demand —
//! first across tenants (honouring each tenant's
//! [`TenantQos`](super::TenantQos) guarantee and burst cap), then across
//! each tenant's shards. Regions hash to shards at `map` time, so
//! independent working sets land on independent control loops; the
//! statistical-multiplexing win of §6.3's ballooning accrues both between
//! tenants and between *shards of one tenant*. A build with no declared
//! tenants is the degenerate one-tenant tree, byte-identical to the
//! historical flat arbiter.
//!
//! Durability composes the same way it does in
//! [`BalloonedCluster`](crate::BalloonedCluster): every shard enforces
//! its assigned bound at every instant, budgets are shrunk (stalling the
//! shrinking shard down) before any shard grows, and the arbiter never
//! assigns more than the battery provisions — so the cluster-wide dirty
//! population never exceeds the global budget.

use std::sync::Arc;

use battery_sim::{Battery, PowerModel};
use fault_sim::FaultPlan;
use mem_sim::MmuStats;
use sim_clock::{Clock, CostModel, SimDuration, SimTime};
use ssd_sim::{SsdConfig, SsdStats};
use telemetry::{
    intern_metric_name, ExporterHandle, FlightRecorder, Profiler, Telemetry, TenantMetricNames,
    TraceEvent, WallKind,
};

use crate::{
    FlushOutcome, InvariantViolation, NvHeap, PowerFailureReport, RegionId, ViyojitConfig,
    ViyojitError, ViyojitStats,
};

use super::hierarchy::apply_budgets;
use super::plane::{ShardControlPlane, ShardDataPlane};
use super::{
    BudgetTree, DegradationGovernor, DegradedMode, DirtyTracker, Engine, SoftwareWalk, TenantId,
    TenantStats,
};

/// Per-shard metric names, interned once at construction (the registry
/// keys on `&'static str`).
#[derive(Debug)]
struct ShardMetricNames {
    dirty_pages: &'static str,
    budget_pages: &'static str,
    /// Profiler frame name (`shard{i}`) for per-shard span attribution.
    frame: &'static str,
}

/// N Viyojit shards sharing one battery's dirty budget.
///
/// Generic over the same [`DirtyTracker`] backends as [`Engine`]; the
/// default is the software walker, matching [`Viyojit`](crate::Viyojit).
///
/// # Examples
///
/// ```
/// use sim_clock::SimDuration;
/// use viyojit::{NvHeap, ShardedViyojitBuilder, ViyojitConfig};
///
/// let mut nv = ShardedViyojitBuilder::new(4, 256, ViyojitConfig::with_budget_pages(64))
///     .min_per_shard(4)
///     .rebalance_period(SimDuration::from_millis(10))
///     .build_sequential()?;
/// let r = nv.map(4096 * 8)?;
/// nv.write(r, 0, b"routed to one shard's engine")?;
/// assert_eq!(nv.dirty_count(), 1);
/// assert!(nv.dirty_count() <= nv.total_budget_pages());
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
#[derive(Debug)]
pub struct ShardedViyojit<B: DirtyTracker = SoftwareWalk> {
    shards: Vec<Engine<B>>,
    tree: BudgetTree,
    /// Global region handle -> (shard index, shard-local region id).
    /// Freed slots are `None` and reused.
    routes: Vec<Option<(usize, RegionId)>>,
    clock: Clock,
    rebalance_period: SimDuration,
    next_rebalance_at: SimTime,
    telemetry: Telemetry,
    profiler: Profiler,
    metric_names: Vec<ShardMetricNames>,
    tenant_metric_names: Vec<TenantMetricNames>,
    /// Pages each tenant lost to emergency flushes, cumulative across
    /// power failures (the per-shard reports are attributed here).
    tenant_pages_lost: Vec<u64>,
    /// Black-box recorder; sequential mode dumps on degraded-mode entry.
    flight: Option<Arc<FlightRecorder>>,
    /// Live metrics exporter; stopped (with a final render) on drop.
    exporter: Option<ExporterHandle>,
}

impl<B: DirtyTracker> ShardedViyojit<B> {
    /// Construction body of
    /// [`ShardedViyojitBuilder::build_sequential`]: one engine per shard
    /// of the (already validated) budget hierarchy, each starting at its
    /// tenant's even initial share. The tree re-divides the budget by
    /// demand every `rebalance_period` of virtual time.
    ///
    /// [`ShardedViyojitBuilder::build_sequential`]:
    ///     super::ShardedViyojitBuilder::build_sequential
    pub(super) fn assemble(
        tree: BudgetTree,
        pages_per_shard: usize,
        config: ViyojitConfig,
        rebalance_period: SimDuration,
        clock: Clock,
        costs: CostModel,
        ssd_config: SsdConfig,
    ) -> Self {
        let shards = tree.members();
        let initial = tree.initial_shares();
        let engines: Vec<Engine<B>> = initial
            .iter()
            .map(|&share| {
                let mut shard_config = config.clone();
                shard_config.dirty_budget_pages = share;
                Engine::new(
                    pages_per_shard,
                    shard_config,
                    clock.clone(),
                    costs.clone(),
                    ssd_config.clone(),
                )
            })
            .collect();
        let metric_names = (0..shards)
            .map(|i| ShardMetricNames {
                dirty_pages: intern_metric_name(format!("sharded.shard{i}.dirty_pages")),
                budget_pages: intern_metric_name(format!("sharded.shard{i}.budget_pages")),
                frame: intern_metric_name(format!("shard{i}")),
            })
            .collect();
        let tenant_metric_names = (0..tree.tenant_count())
            .map(TenantMetricNames::for_tenant)
            .collect();
        let tenant_pages_lost = vec![0; tree.tenant_count()];
        let next_rebalance_at = clock.now() + rebalance_period;
        ShardedViyojit {
            shards: engines,
            tree,
            routes: Vec::new(),
            clock,
            rebalance_period,
            next_rebalance_at,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
            metric_names,
            tenant_metric_names,
            tenant_pages_lost,
            flight: None,
            exporter: None,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shared access to one shard's engine.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn shard(&self, idx: usize) -> &Engine<B> {
        &self.shards[idx]
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The provisioned global budget.
    pub fn total_budget_pages(&self) -> u64 {
        self.tree.total_budget_pages()
    }

    /// Number of tenants in the budget hierarchy (one for a build with no
    /// declared tenants).
    pub fn tenant_count(&self) -> usize {
        self.tree.tenant_count()
    }

    /// The tenant owning shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn tenant_of_shard(&self, shard: usize) -> TenantId {
        self.tree.tenant_of_shard(shard)
    }

    /// Sum of budgets currently assigned to shards. At most the global
    /// budget at every instant.
    pub fn total_assigned(&self) -> u64 {
        self.shards.iter().map(|s| s.dirty_budget()).sum()
    }

    /// Pages counted dirty across all shards.
    pub fn dirty_count(&self) -> u64 {
        self.shards.iter().map(|s| s.dirty_count()).sum()
    }

    /// Budget rebalances performed so far.
    pub fn rebalances(&self) -> u64 {
        self.tree.rebalances()
    }

    /// Aggregated runtime counters (field-wise sum over shards).
    pub fn stats(&self) -> ViyojitStats {
        let mut total = ViyojitStats::default();
        for s in &self.shards {
            total.accumulate(&s.stats());
        }
        total
    }

    /// Per-tenant accounting: each tenant's summed counters, current
    /// budget and dirty population, cumulative pages lost to power
    /// failures, and whether a degraded-mode throttle is active.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        (0..self.tree.tenant_count())
            .map(|t| {
                let tenant = TenantId(t);
                let mut stats = ViyojitStats::default();
                let mut budget_pages = 0;
                let mut dirty_pages = 0;
                for shard in &self.shards[self.tree.tenant_shards(tenant)] {
                    stats.accumulate(&shard.stats());
                    budget_pages += shard.dirty_budget();
                    dirty_pages += shard.dirty_count();
                }
                TenantStats {
                    tenant,
                    name: self.tree.tenant_name(tenant).to_string(),
                    budget_pages,
                    dirty_pages,
                    stats,
                    pages_lost: self.tenant_pages_lost[t],
                    throttled: self.tree.throttle_of(tenant).is_some(),
                }
            })
            .collect()
    }

    /// Aggregated MMU access counters.
    pub fn mmu_stats(&self) -> MmuStats {
        let mut total = MmuStats::default();
        for s in self.shards.iter().map(|s| s.mmu_stats()) {
            total.reads += s.reads;
            total.writes += s.writes;
            total.bytes_read += s.bytes_read;
            total.bytes_written += s.bytes_written;
            total.write_faults += s.write_faults;
            total.pte_dirtied += s.pte_dirtied;
        }
        total
    }

    /// Aggregated SSD counters.
    pub fn ssd_stats(&self) -> SsdStats {
        let mut total = SsdStats::default();
        for s in self.shards.iter().map(|s| s.ssd_stats()) {
            total.writes += s.writes;
            total.reads += s.reads;
            total.bytes_written += s.bytes_written;
            total.bytes_read += s.bytes_read;
            total.write_errors += s.write_errors;
        }
        total
    }

    /// Attaches telemetry to the frontend and every shard.
    ///
    /// All shards publish the standard `viyojit.*` metrics into the one
    /// registry; since counters only move up under `counter_set`, those
    /// read as the *maximum* across shards. The per-shard truth lives in
    /// the `sharded.shardN.*` gauges (and the `sharded.tenantN.*` tenant
    /// aggregates) this frontend publishes at each rebalance.
    pub(crate) fn install_telemetry(&mut self, telemetry: Telemetry) {
        for shard in &mut self.shards {
            shard.attach_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
    }

    /// Attaches a virtual-time profiler to the frontend and every shard.
    ///
    /// Shard entry points (routed reads/writes, rebalance budget moves)
    /// are wrapped in per-shard `shard{i}` scopes, so one flamegraph shows
    /// which shard's control loop the virtual time went to — the engine's
    /// own spans nest underneath (`app;shard2;wp_trap;...`).
    pub(crate) fn install_profiler(&mut self, profiler: Profiler) {
        for shard in &mut self.shards {
            shard.attach_profiler(profiler.clone());
        }
        self.profiler = profiler;
    }

    /// Attaches one fault plan to every shard (shards share the plan's
    /// RNG stream; shard order is deterministic, so runs stay reproducible
    /// from the seed).
    pub(crate) fn install_faults(&mut self, faults: FaultPlan) {
        for shard in &mut self.shards {
            shard.attach_faults(faults.clone());
        }
    }

    /// Attaches a fault plan to one tenant's shards only (a per-tenant
    /// fault profile from the builder overrides any global plan for that
    /// tenant's range).
    pub(crate) fn install_tenant_faults(&mut self, tenant: TenantId, faults: FaultPlan) {
        for i in self.tree.tenant_shards(tenant) {
            self.shards[i].attach_faults(faults.clone());
        }
    }

    /// Attaches one crash schedule to every shard (clones share the one
    /// armed `(point, hit)` pair, so the whole cluster crashes at most
    /// once).
    pub(crate) fn install_crashes(&mut self, crashes: fault_sim::CrashSchedule) {
        for shard in &mut self.shards {
            shard.attach_crashes(crashes.clone());
        }
    }

    /// Arms the flight recorder (sequential mode dumps a `control` black
    /// box when the degradation governor enters degraded mode; panics
    /// unwind to the caller here, so there is no panic seam to hook).
    pub(crate) fn install_flight(&mut self, flight: Option<Arc<FlightRecorder>>) {
        self.flight = flight;
    }

    /// Starts the live metrics exporter over this frontend's telemetry.
    pub(crate) fn install_exporter(&mut self, config: Option<telemetry::ExporterConfig>) {
        self.exporter = config.map(|c| telemetry::spawn_exporter(self.telemetry.clone(), c));
    }

    /// Simulates a global power failure: every shard flushes its counted
    /// dirty pages. The battery obligation is the page *sum* but the drain
    /// *time* is the slowest shard — shards flush to independent SSDs in
    /// parallel.
    pub fn power_failure(&mut self) -> PowerFailureReport {
        self.aggregate_power_failure(|shard| shard.power_failure())
    }

    /// Simulates a global power failure racing one shared battery: each
    /// shard executes its emergency flush against the draining supply (see
    /// [`Engine::power_failure_powered`]); the aggregate keeps the worst
    /// outcome and the smallest energy margin across shards.
    pub fn power_failure_powered(
        &mut self,
        battery: &Battery,
        power: &PowerModel,
    ) -> PowerFailureReport {
        self.aggregate_power_failure(|shard| shard.power_failure_powered(battery, power))
    }

    fn aggregate_power_failure(
        &mut self,
        mut failure: impl FnMut(&mut Engine<B>) -> PowerFailureReport,
    ) -> PowerFailureReport {
        let mut total = PowerFailureReport {
            dirty_pages: 0,
            pages_flushed: 0,
            pages_lost: 0,
            retries: 0,
            bytes_flushed: 0,
            flush_time: SimDuration::ZERO,
            energy_margin_joules: f64::INFINITY,
            outcome: FlushOutcome::Complete,
        };
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let r = failure(shard);
            self.tenant_pages_lost[self.tree.tenant_of_shard(i).0] += r.pages_lost;
            total.dirty_pages += r.dirty_pages;
            total.pages_flushed += r.pages_flushed;
            total.pages_lost += r.pages_lost;
            total.retries += r.retries;
            total.bytes_flushed += r.bytes_flushed;
            total.flush_time = total.flush_time.max(r.flush_time);
            total.energy_margin_joules = total.energy_margin_joules.min(r.energy_margin_joules);
            total.outcome = total.outcome.max(r.outcome);
        }
        // The loss ledger is published here as well as at rebalance so a
        // power failure before the first budget round still leaves the
        // per-tenant counters in the registry — the parallel runtime
        // publishes at this point, and the merged view must match.
        self.telemetry.metrics(|m| {
            for (names, &lost) in self.tenant_metric_names.iter().zip(&self.tenant_pages_lost) {
                m.counter_set(names.pages_lost, lost);
            }
        });
        total
    }

    /// Re-provisions the global budget at runtime (a §8 re-derivation or
    /// a degradation transition): the arbiter's total changes, then an
    /// immediate rebalance shrinks losers before growing winners, so the
    /// cluster-wide dirty population fits the new budget on return.
    ///
    /// # Panics
    ///
    /// Panics if the per-shard floors no longer fit `pages`.
    pub fn set_total_budget(&mut self, pages: u64) {
        self.tree.set_total_budget(pages);
        self.rebalance();
    }

    /// Caps one tenant's allocation at `cap` pages (clamped up to its
    /// shard floors), or lifts the cap with `None`, then rebalances so the
    /// change takes effect immediately — the freed pages flow to sibling
    /// tenants' burst pools.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn throttle_tenant(&mut self, tenant: TenantId, cap: Option<u64>) {
        self.tree.throttle(tenant, cap);
        self.emit_throttle(tenant);
        self.rebalance();
    }

    /// Feeds a *per-tenant* degradation governor that tenant's signals
    /// (reported battery health plus the tenant's shards' SSD error
    /// counters) and, on a mode transition, squeezes the tenant's
    /// allocation through [`ShardedViyojit::throttle_tenant`] — entering
    /// degraded mode caps the tenant at the governor's prescribed budget,
    /// recovery lifts the cap — while sibling tenants keep their QoS.
    /// Returns the prescribed tenant budget if a transition happened.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn govern_tenant_degradation(
        &mut self,
        tenant: TenantId,
        governor: &mut DegradationGovernor,
        reported_health: f64,
    ) -> Option<u64> {
        let mut ssd = SsdStats::default();
        for shard in &self.shards[self.tree.tenant_shards(tenant)] {
            let s = shard.ssd_stats();
            ssd.writes += s.writes;
            ssd.reads += s.reads;
            ssd.bytes_written += s.bytes_written;
            ssd.bytes_read += s.bytes_read;
            ssd.write_errors += s.write_errors;
        }
        let budget = governor.observe(reported_health, &ssd)?;
        let throttled = matches!(governor.mode(), DegradedMode::Degraded(_));
        self.throttle_tenant(tenant, throttled.then_some(budget));
        Some(budget)
    }

    fn emit_throttle(&mut self, tenant: TenantId) {
        let throttle = self.tree.throttle_of(tenant);
        let cap_pages = throttle.unwrap_or_else(|| self.tree.tenant_qos(tenant).capacity());
        self.telemetry.emit(|| TraceEvent::TenantThrottled {
            tenant: tenant.0 as u64,
            throttled: throttle.is_some(),
            cap_pages,
        });
    }

    /// Feeds the degradation governor the cluster-wide signals (reported
    /// battery health plus the summed shard SSD error counters) and, on a
    /// mode transition, applies the prescribed budget through
    /// [`ShardedViyojit::set_total_budget`]. Returns the applied global
    /// budget if a transition happened.
    pub fn govern_degradation(
        &mut self,
        governor: &mut DegradationGovernor,
        reported_health: f64,
    ) -> Option<u64> {
        let ssd = self.ssd_stats();
        let budget = governor.observe(reported_health, &ssd)?;
        let degraded = matches!(governor.mode(), DegradedMode::Degraded(_));
        self.telemetry.emit(|| TraceEvent::DegradedModeChanged {
            degraded,
            budget_pages: budget,
        });
        self.set_total_budget(budget);
        if degraded {
            if let Some(flight) = &self.flight {
                let _ = flight.dump(
                    "control",
                    "degraded_mode",
                    self.tree.rebalances(),
                    &self.telemetry,
                );
            }
        }
        Some(budget)
    }

    /// Recovers every shard from its SSD after a power cycle. Routes
    /// survive (region metadata lives in the flushed superblock, as in
    /// [`Engine::recover`]).
    pub fn recover(&mut self) {
        for shard in &mut self.shards {
            shard.recover();
        }
        self.next_rebalance_at = self.clock.now() + self.rebalance_period;
    }

    /// Checks the cluster-wide invariants: assigned budgets fit the
    /// battery, the global dirty population fits the battery, and every
    /// shard's own invariants hold.
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        self.tree.check_assignment(self.total_assigned())?;
        let dirty = self.dirty_count();
        if dirty > self.total_budget_pages() {
            return Err(InvariantViolation::BudgetExceeded {
                dirty,
                budget: self.total_budget_pages(),
            });
        }
        for shard in &self.shards {
            shard.check_invariants()?;
        }
        Ok(())
    }

    /// Panicking wrapper over [`ShardedViyojit::check_invariants`].
    ///
    /// # Panics
    ///
    /// Panics with the violation's `Display` text on any violation.
    pub fn validate(&self) {
        if let Err(violation) = self.check_invariants() {
            panic!("{violation}");
        }
    }

    /// The shard a global region handle routes to, if mapped.
    pub fn shard_of(&self, region: RegionId) -> Option<usize> {
        self.routes
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .map(|&(shard, _)| shard)
    }

    /// Preferred shard for the `n`-th mapping (Fibonacci hashing keeps
    /// consecutive handles well spread).
    fn preferred_shard(&self, slot: usize) -> usize {
        let hash = (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (hash % self.shards.len() as u64) as usize
    }

    fn route(&self, region: RegionId) -> Result<(usize, RegionId), ViyojitError> {
        self.routes
            .get(region.0 as usize)
            .and_then(|r| *r)
            .ok_or(ViyojitError::BadRegion(region))
    }

    /// Runs a rebalance if the virtual clock crossed the boundary, then
    /// fast-forwards the boundary past "now" (one rebalance per gap; the
    /// arbiter sees cumulative demand either way).
    fn maybe_rebalance(&mut self) {
        let now = self.clock.now();
        if now < self.next_rebalance_at {
            return;
        }
        self.rebalance();
        while self.next_rebalance_at <= self.clock.now() {
            self.next_rebalance_at += self.rebalance_period;
        }
    }

    /// Re-divides the global budget by demand: plan through the tenant
    /// hierarchy from current stats, shrink the losers (stalling them down
    /// to their new bound), grow the winners, commit the post-apply stats
    /// as the next baseline.
    pub fn rebalance(&mut self) {
        let wall = self.telemetry.wall_start();
        let before: Vec<ViyojitStats> = self.shards.iter().map(|s| s.stats()).collect();
        let targets = self.tree.plan(&before);
        // Power cut mid-rebalance: targets planned, no engine touched yet
        // (the shrink/grow seam inside apply_budgets is a second, later
        // crashpoint).
        if let Some(shard) = self.shards.first() {
            fault_sim::crashpoint!(shard.crashes(), Rebalance);
        }
        let frames: Vec<&'static str> = self.metric_names.iter().map(|n| n.frame).collect();
        apply_budgets(&mut self.shards, &targets, &self.profiler, &frames);
        let after: Vec<ViyojitStats> = self.shards.iter().map(|s| s.stats()).collect();
        self.tree.commit(&after);
        self.publish_shard_metrics();
        self.telemetry.record_wall(WallKind::BudgetRound, wall);
    }

    fn publish_shard_metrics(&mut self) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let rebalances = self.tree.rebalances();
        let tenants: Vec<TenantStats> = ShardedViyojit::tenant_stats(self);
        self.telemetry.metrics(|m| {
            m.counter_set("sharded.rebalances", rebalances);
            for (shard, names) in self.shards.iter().zip(&self.metric_names) {
                m.gauge_set(names.dirty_pages, shard.dirty_count() as f64);
                m.gauge_set(names.budget_pages, shard.dirty_budget() as f64);
            }
            for (t, names) in tenants.iter().zip(&self.tenant_metric_names) {
                m.gauge_set(names.budget_pages, t.budget_pages as f64);
                m.gauge_set(names.dirty_pages, t.dirty_pages as f64);
                m.counter_set(names.stall_nanos, t.stats.stall_time.as_nanos());
                m.counter_set(names.pages_lost, t.pages_lost);
            }
        });
    }
}

impl<B: DirtyTracker> NvHeap for ShardedViyojit<B> {
    /// Maps a region on the preferred (hashed) shard, probing the other
    /// shards in order when that shard's space is exhausted.
    fn map(&mut self, len_bytes: u64) -> Result<RegionId, ViyojitError> {
        let slot = self
            .routes
            .iter()
            .position(|r| r.is_none())
            .unwrap_or(self.routes.len());
        let preferred = self.preferred_shard(slot);
        let n = self.shards.len();
        let mut last_err = None;
        for probe in 0..n {
            let shard = (preferred + probe) % n;
            match self.shards[shard].map(len_bytes) {
                Ok(local) => {
                    let route = Some((shard, local));
                    if slot == self.routes.len() {
                        self.routes.push(route);
                    } else {
                        self.routes[slot] = route;
                    }
                    return Ok(RegionId(slot as u32));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one shard was probed"))
    }

    fn unmap(&mut self, region: RegionId) -> Result<(), ViyojitError> {
        let (shard, local) = self.route(region)?;
        self.shards[shard].unmap(local)?;
        self.routes[region.0 as usize] = None;
        Ok(())
    }

    fn read(&mut self, region: RegionId, offset: u64, buf: &mut [u8]) -> Result<(), ViyojitError> {
        let (shard, local) = self.route(region)?;
        {
            let _scope = self.profiler.scope(self.metric_names[shard].frame);
            self.shards[shard].read(local, offset, buf)?;
        }
        self.maybe_rebalance();
        Ok(())
    }

    fn write(&mut self, region: RegionId, offset: u64, data: &[u8]) -> Result<(), ViyojitError> {
        let (shard, local) = self.route(region)?;
        {
            let _scope = self.profiler.scope(self.metric_names[shard].frame);
            self.shards[shard].write(local, offset, data)?;
        }
        self.maybe_rebalance();
        Ok(())
    }

    fn region_len(&self, region: RegionId) -> Result<u64, ViyojitError> {
        let (shard, local) = self.route(region)?;
        self.shards[shard].region_len(local)
    }
}

impl<B: DirtyTracker> ShardDataPlane for ShardedViyojit<B> {
    /// Advances the shared virtual clock and runs a rebalance if the
    /// period boundary was crossed — equivalent to the historical pattern
    /// of `clock.advance(d)` followed by the next routed access.
    fn step(&mut self, d: SimDuration) -> Result<(), ViyojitError> {
        let wall = self.telemetry.wall_start();
        self.clock.advance(d);
        self.maybe_rebalance();
        self.telemetry.record_wall(WallKind::Step, wall);
        Ok(())
    }

    /// The sequential frontend buffers nothing; always `Ok`.
    fn sync(&mut self) -> Result<(), ViyojitError> {
        Ok(())
    }
}

impl<B: DirtyTracker> ShardControlPlane for ShardedViyojit<B> {
    fn rebalance(&mut self) -> Result<(), ViyojitError> {
        ShardedViyojit::rebalance(self);
        Ok(())
    }

    fn set_total_budget(&mut self, pages: u64) -> Result<(), ViyojitError> {
        if self.tree.min_per_shard() * self.shards.len() as u64 > pages {
            return Err(ViyojitError::InvalidConfig(
                "per-shard floors exceed the re-provisioned budget",
            ));
        }
        ShardedViyojit::set_total_budget(self, pages);
        Ok(())
    }

    fn govern_degradation(
        &mut self,
        governor: &mut DegradationGovernor,
        reported_health: f64,
    ) -> Result<Option<u64>, ViyojitError> {
        Ok(ShardedViyojit::govern_degradation(
            self,
            governor,
            reported_health,
        ))
    }

    fn power_failure(&mut self) -> Result<PowerFailureReport, ViyojitError> {
        Ok(ShardedViyojit::power_failure(self))
    }

    fn power_failure_powered(
        &mut self,
        battery: &Battery,
        power: &PowerModel,
    ) -> Result<PowerFailureReport, ViyojitError> {
        Ok(ShardedViyojit::power_failure_powered(self, battery, power))
    }

    fn recover(&mut self) -> Result<(), ViyojitError> {
        ShardedViyojit::recover(self);
        Ok(())
    }

    fn stats(&mut self) -> Result<ViyojitStats, ViyojitError> {
        Ok(ShardedViyojit::stats(self))
    }

    fn dirty_count(&mut self) -> Result<u64, ViyojitError> {
        Ok(ShardedViyojit::dirty_count(self))
    }

    fn total_budget_pages(&self) -> u64 {
        ShardedViyojit::total_budget_pages(self)
    }

    fn rebalances(&mut self) -> Result<u64, ViyojitError> {
        Ok(ShardedViyojit::rebalances(self))
    }

    fn check_invariants(&mut self) -> Result<(), ViyojitError> {
        ShardedViyojit::check_invariants(self).map_err(ViyojitError::from)
    }

    fn tenant_stats(&mut self) -> Result<Vec<TenantStats>, ViyojitError> {
        Ok(ShardedViyojit::tenant_stats(self))
    }

    fn throttle_tenant(&mut self, tenant: TenantId, cap: Option<u64>) -> Result<(), ViyojitError> {
        if tenant.0 >= self.tree.tenant_count() {
            return Err(ViyojitError::InvalidConfig("tenant id out of range"));
        }
        ShardedViyojit::throttle_tenant(self, tenant, cap);
        Ok(())
    }

    fn govern_tenant_degradation(
        &mut self,
        tenant: TenantId,
        governor: &mut DegradationGovernor,
        reported_health: f64,
    ) -> Result<Option<u64>, ViyojitError> {
        if tenant.0 >= self.tree.tenant_count() {
            return Err(ViyojitError::InvalidConfig("tenant id out of range"));
        }
        Ok(ShardedViyojit::govern_tenant_degradation(
            self,
            tenant,
            governor,
            reported_health,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{ShardedViyojitBuilder, TenantQos};
    use super::*;
    use mem_sim::PAGE_SIZE;

    fn cluster(shards: usize, budget: u64) -> Result<ShardedViyojit, ViyojitError> {
        ShardedViyojitBuilder::new(shards, 256, ViyojitConfig::with_budget_pages(budget))
            .min_per_shard(2)
            .rebalance_period(SimDuration::from_millis(1))
            .build_sequential()
    }

    #[test]
    fn regions_spread_across_shards_and_round_trip() -> Result<(), ViyojitError> {
        let mut nv = cluster(4, 64)?;
        let regions = (0..8)
            .map(|_| nv.map(PAGE_SIZE as u64 * 4))
            .collect::<Result<Vec<RegionId>, ViyojitError>>()?;
        let used: std::collections::HashSet<usize> =
            regions.iter().filter_map(|&r| nv.shard_of(r)).collect();
        assert!(used.len() > 1, "hashing should use more than one shard");
        for (i, &r) in regions.iter().enumerate() {
            nv.write(r, 0, &[i as u8; 64])?;
        }
        let mut buf = [0u8; 64];
        for (i, &r) in regions.iter().enumerate() {
            nv.read(r, 0, &mut buf)?;
            assert_eq!(buf, [i as u8; 64]);
        }
        nv.check_invariants().map_err(ViyojitError::from)
    }

    #[test]
    fn unmapping_yields_a_typed_bad_region_and_frees_the_slot() -> Result<(), ViyojitError> {
        let mut nv = cluster(2, 16)?;
        let a = nv.map(PAGE_SIZE as u64)?;
        let b = nv.map(PAGE_SIZE as u64)?;
        nv.unmap(a)?;
        assert_eq!(
            nv.read(a, 0, &mut [0u8; 1]),
            Err(ViyojitError::BadRegion(a)),
            "a freed handle must name itself in the error"
        );
        let c = nv.map(PAGE_SIZE as u64)?;
        assert_eq!(c, a, "freed route slots are reused");
        nv.write(b, 0, b"x")?;
        nv.write(c, 0, b"y")?;
        nv.check_invariants().map_err(ViyojitError::from)
    }

    #[test]
    fn map_probes_past_a_full_shard_then_reports_out_of_space() -> Result<(), ViyojitError> {
        // Two tiny shards: one large mapping fills the preferred shard,
        // the next must land on the other; a third finds no free run
        // anywhere and the error carries the exact shortfall.
        let mut nv = ShardedViyojitBuilder::new(2, 8, ViyojitConfig::with_budget_pages(8))
            .min_per_shard(2)
            .rebalance_period(SimDuration::from_millis(1))
            .build_sequential()?;
        let a = nv.map(PAGE_SIZE as u64 * 8)?;
        let b = nv.map(PAGE_SIZE as u64 * 8)?;
        assert_ne!(nv.shard_of(a), nv.shard_of(b));
        assert_eq!(
            nv.map(PAGE_SIZE as u64),
            Err(ViyojitError::OutOfSpace {
                requested_pages: 1,
                largest_free_run: 0,
            })
        );
        Ok(())
    }

    #[test]
    fn rebalance_conserves_the_global_budget() -> Result<(), ViyojitError> {
        let mut nv = cluster(4, 64)?;
        let r = nv.map(PAGE_SIZE as u64 * 32)?;
        for i in 0..32u64 {
            nv.write(r, i * PAGE_SIZE as u64, &[1])?;
        }
        nv.rebalance();
        assert_eq!(nv.total_assigned(), 64);
        assert!(nv.rebalances() >= 1);
        nv.check_invariants().map_err(ViyojitError::from)
    }

    #[test]
    fn dirty_total_never_exceeds_the_battery() -> Result<(), ViyojitError> {
        let mut nv = cluster(4, 16)?;
        let regions = (0..4)
            .map(|_| nv.map(PAGE_SIZE as u64 * 32))
            .collect::<Result<Vec<RegionId>, ViyojitError>>()?;
        for round in 0..64u64 {
            for &r in &regions {
                let page = (round * 7) % 32;
                nv.write(r, page * PAGE_SIZE as u64, &[round as u8])?;
                assert!(nv.dirty_count() <= nv.total_budget_pages());
            }
        }
        nv.check_invariants()?;
        let report = nv.power_failure();
        assert!(report.dirty_pages <= nv.total_budget_pages());
        Ok(())
    }

    #[test]
    fn recovery_restores_every_shard() -> Result<(), ViyojitError> {
        let mut nv = cluster(2, 8)?;
        let r = nv.map(PAGE_SIZE as u64 * 4)?;
        nv.write(r, 0, b"durable across the cycle")?;
        nv.power_failure();
        nv.recover();
        let mut buf = [0u8; 24];
        nv.read(r, 0, &mut buf)?;
        assert_eq!(&buf, b"durable across the cycle");
        nv.check_invariants().map_err(ViyojitError::from)
    }

    #[test]
    fn step_crosses_rebalance_boundaries_like_routed_accesses() -> Result<(), ViyojitError> {
        let mut nv = cluster(2, 16)?;
        assert_eq!(ShardControlPlane::rebalances(&mut nv)?, 0);
        ShardDataPlane::step(&mut nv, SimDuration::from_millis(5))?;
        assert_eq!(
            ShardControlPlane::rebalances(&mut nv)?,
            1,
            "one rebalance per gap, however many boundaries it spans"
        );
        ShardDataPlane::sync(&mut nv)?;
        ShardDataPlane::step(&mut nv, SimDuration::from_micros(10))?;
        assert_eq!(ShardControlPlane::rebalances(&mut nv)?, 1);
        Ok(())
    }

    #[test]
    fn control_plane_rejects_budgets_below_the_floors() -> Result<(), ViyojitError> {
        let mut nv = cluster(4, 64)?;
        let err = ShardControlPlane::set_total_budget(&mut nv, 7)
            .expect_err("4 shards with floor 2 cannot fit 7 pages");
        assert!(matches!(err, ViyojitError::InvalidConfig(_)));
        assert_eq!(ShardControlPlane::total_budget_pages(&nv), 64);
        ShardControlPlane::set_total_budget(&mut nv, 8)?;
        assert_eq!(ShardControlPlane::total_budget_pages(&nv), 8);
        Ok(())
    }

    #[test]
    fn throttling_one_tenant_moves_its_burst_to_the_sibling() -> Result<(), ViyojitError> {
        let mut nv = ShardedViyojitBuilder::new(4, 256, ViyojitConfig::with_budget_pages(64))
            .min_per_shard(2)
            .rebalance_period(SimDuration::from_millis(1))
            .tenant("noisy", 2, TenantQos::guaranteed(16).burst(32))
            .tenant("quiet", 2, TenantQos::guaranteed(16))
            .build_sequential()?;
        assert_eq!(nv.tenant_count(), 2);
        let stats = ShardedViyojit::tenant_stats(&nv);
        assert_eq!(stats[0].name, "noisy");
        assert_eq!(stats[1].name, "quiet");
        assert_eq!(
            stats.iter().map(|t| t.budget_pages).sum::<u64>(),
            64,
            "the whole budget is divided across tenants"
        );

        // Squeeze the noisy tenant to its shard floors: everything above
        // them must flow to the quiet sibling.
        ShardControlPlane::throttle_tenant(&mut nv, TenantId(0), Some(4))?;
        let stats = ShardedViyojit::tenant_stats(&nv);
        assert!(stats[0].throttled && !stats[1].throttled);
        assert_eq!(stats[0].budget_pages, 4, "capped at the clamped floor");
        assert_eq!(stats[1].budget_pages, 60, "the sibling absorbs the rest");

        // Lifting the cap restores demand-driven division.
        ShardControlPlane::throttle_tenant(&mut nv, TenantId(0), None)?;
        let stats = ShardedViyojit::tenant_stats(&nv);
        assert!(!stats[0].throttled);
        assert_eq!(stats.iter().map(|t| t.budget_pages).sum::<u64>(), 64);

        let err = ShardControlPlane::throttle_tenant(&mut nv, TenantId(2), None)
            .expect_err("tenant 2 does not exist");
        assert!(matches!(err, ViyojitError::InvalidConfig(_)));
        nv.check_invariants().map_err(ViyojitError::from)
    }
}
