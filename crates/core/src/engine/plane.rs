//! The data-plane / control-plane split of the sharded engine.
//!
//! The redesigned sharding API separates the two roles the old monolithic
//! [`ShardedViyojit`](super::ShardedViyojit) facade mixed together:
//!
//! - the **data plane** ([`ShardDataPlane`]) is the application-visible
//!   heap surface — `map`/`read`/`write` via [`NvHeap`], plus [`step`]
//!   (explicitly advancing virtual time) and [`sync`] (draining any
//!   buffered work) — the path that must run at memory speed;
//! - the **control plane** ([`ShardControlPlane`]) is everything the
//!   operator or the budget governor does — rebalances, budget
//!   re-provisioning, power failures, recovery, invariant audits — the
//!   path that may coordinate across shards.
//!
//! Both the sequential frontend ([`ShardedViyojit`](super::ShardedViyojit))
//! and the thread-parallel runtime
//! ([`ShardDataHandle`](super::ShardDataHandle) /
//! [`ShardControlHandle`](super::ShardControlHandle)) implement these
//! traits, so experiments can swap execution modes without touching
//! workload code. See DESIGN.md "Threading model & plane split".
//!
//! [`step`]: ShardDataPlane::step
//! [`sync`]: ShardDataPlane::sync

use battery_sim::{Battery, PowerModel};
use sim_clock::SimDuration;

use crate::{NvHeap, PowerFailureReport, ViyojitError, ViyojitStats};

use super::{DegradationGovernor, TenantId, TenantStats};

/// The application-facing half of a sharded deployment: the [`NvHeap`]
/// surface plus explicit virtual-time advancement.
///
/// Implementations must be driveable by a single caller thread; all
/// determinism contracts (see DESIGN.md) are stated for one driver
/// issuing operations in program order.
pub trait ShardDataPlane: NvHeap {
    /// Advances virtual time by `d` and runs any budget rebalances whose
    /// period boundary was crossed (at most one per call; the boundary
    /// then fast-forwards past "now", mirroring the sequential
    /// frontend's catch-up rule).
    ///
    /// # Errors
    ///
    /// Propagates rebalance failures; the parallel runtime also surfaces
    /// [`ViyojitError::ShardFailed`] when a shard thread has died.
    fn step(&mut self, d: SimDuration) -> Result<(), ViyojitError>;

    /// Drains any buffered data-plane work (the parallel runtime batches
    /// writes per shard) and surfaces any asynchronous error. A no-op on
    /// the sequential frontend.
    ///
    /// Call this before handing off to control-plane queries when exact
    /// cross-plane consistency matters — e.g. before comparing stats
    /// against another run.
    ///
    /// # Errors
    ///
    /// The first error any buffered operation produced.
    fn sync(&mut self) -> Result<(), ViyojitError>;
}

/// The operator-facing half of a sharded deployment: budget control,
/// failure simulation, recovery, and audits.
///
/// Every method takes `&mut self` and returns `Result` — on the parallel
/// runtime each call is a message exchange with shard threads that can
/// fail with [`ViyojitError::ShardFailed`]; the sequential frontend never
/// fails except where documented.
pub trait ShardControlPlane {
    /// Forces a demand-driven budget rebalance now.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::ShardFailed`] if a shard thread has died.
    fn rebalance(&mut self) -> Result<(), ViyojitError>;

    /// Re-provisions the global dirty budget and rebalances under the new
    /// total (shrinking before growing, as always).
    ///
    /// # Errors
    ///
    /// [`ViyojitError::InvalidConfig`] if the per-shard floors no longer
    /// fit `pages`; [`ViyojitError::ShardFailed`] if a shard thread died.
    fn set_total_budget(&mut self, pages: u64) -> Result<(), ViyojitError>;

    /// Feeds the degradation governor the cluster-wide signals and, on a
    /// mode transition, applies the prescribed budget. Returns the
    /// applied global budget if a transition happened.
    ///
    /// # Errors
    ///
    /// As for [`ShardControlPlane::set_total_budget`].
    fn govern_degradation(
        &mut self,
        governor: &mut DegradationGovernor,
        reported_health: f64,
    ) -> Result<Option<u64>, ViyojitError>;

    /// Simulates a global power failure: every shard flushes its counted
    /// dirty pages; the report sums pages and keeps the slowest shard's
    /// flush time.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::ShardFailed`] if a shard thread has died.
    fn power_failure(&mut self) -> Result<PowerFailureReport, ViyojitError>;

    /// Simulates a global power failure racing one shared battery; the
    /// aggregate keeps the worst outcome and smallest energy margin.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::ShardFailed`] if a shard thread has died.
    fn power_failure_powered(
        &mut self,
        battery: &Battery,
        power: &PowerModel,
    ) -> Result<PowerFailureReport, ViyojitError>;

    /// Recovers every shard from its SSD after a power cycle.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::ShardFailed`] if a shard thread has died.
    fn recover(&mut self) -> Result<(), ViyojitError>;

    /// Aggregated runtime counters (field-wise sum over shards).
    ///
    /// # Errors
    ///
    /// [`ViyojitError::ShardFailed`] if a shard thread has died.
    fn stats(&mut self) -> Result<ViyojitStats, ViyojitError>;

    /// Pages counted dirty across all shards.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::ShardFailed`] if a shard thread has died.
    fn dirty_count(&mut self) -> Result<u64, ViyojitError>;

    /// The provisioned global budget.
    fn total_budget_pages(&self) -> u64;

    /// Budget rebalances performed so far.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::ShardFailed`] if the arbiter is unreachable.
    fn rebalances(&mut self) -> Result<u64, ViyojitError>;

    /// Checks the cluster-wide invariants (assigned budgets fit the
    /// battery, global dirty population fits the battery, every shard's
    /// own invariants hold).
    ///
    /// # Errors
    ///
    /// The first violation found (as [`ViyojitError::Invariant`]), or
    /// [`ViyojitError::ShardFailed`] if a shard thread has died.
    fn check_invariants(&mut self) -> Result<(), ViyojitError>;

    /// Per-tenant QoS observables: budget received, dirty population,
    /// summed runtime counters, pages lost to power failures, and whether
    /// a throttle is currently applied. One entry per declared tenant, in
    /// declaration order (a single implicit tenant when none were
    /// declared).
    ///
    /// # Errors
    ///
    /// [`ViyojitError::ShardFailed`] if a shard thread has died.
    fn tenant_stats(&mut self) -> Result<Vec<TenantStats>, ViyojitError>;

    /// Caps one tenant's allocation at `cap` pages (clamped up to its
    /// shard floors) or lifts the cap with `None`, then rebalances.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::InvalidConfig`] if `tenant` is out of range;
    /// [`ViyojitError::ShardFailed`] if a shard thread has died.
    fn throttle_tenant(&mut self, tenant: TenantId, cap: Option<u64>) -> Result<(), ViyojitError>;

    /// Feeds a per-tenant degradation governor that tenant's signals and,
    /// on a mode transition, throttles (or un-throttles) only that
    /// tenant. Returns the prescribed tenant budget if a transition
    /// happened.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::InvalidConfig`] if `tenant` is out of range;
    /// [`ViyojitError::ShardFailed`] if a shard thread has died.
    fn govern_tenant_degradation(
        &mut self,
        tenant: TenantId,
        governor: &mut DegradationGovernor,
        reported_health: f64,
    ) -> Result<Option<u64>, ViyojitError>;
}
