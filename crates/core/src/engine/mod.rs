//! The unified NV-DRAM engine: one Fig. 6 state machine, pluggable
//! dirty-tracking backends.
//!
//! The paper describes one control loop — budget enforcement, epoch
//! recency, EWMA pressure, proactive copying, power failure, recovery —
//! and two mechanisms for *observing* dirtiness: write-protection faults
//! (§5, the software design) and an MMU dirty counter with shadow bits
//! (§5.4, the hardware sketch). The full-battery baseline of Figs. 7–8 is
//! the degenerate third case: every page is presumed dirty, so nothing is
//! tracked at all.
//!
//! [`Engine<B>`] owns the shared state machine; the [`DirtyTracker`]
//! backend supplies only the page-tracking mechanics. The three
//! implementations reproduce the historical `Viyojit`,
//! `MmuAssistedViyojit`, and `NvdramBaseline` types exactly (those names
//! survive as aliases/wrappers), including each mode's cost charging:
//! which operations trap, what the walker scans, and what a flush pays.
//!
//! On top of the engine, [`sharded::ShardedViyojit`] multiplexes one
//! battery's budget across N per-region shards through a
//! [`hierarchy::BudgetTree`] — machine → tenant → shard, each tenant's
//! shards divided by a per-tenant [`arbiter::BudgetArbiter`] — the
//! ROADMAP's scale-out and multi-tenant frontend.

mod arbiter;
mod backend;
mod builder;
mod degrade;
mod emergency;
mod hierarchy;
mod parallel;
mod plane;
mod sharded;

pub use arbiter::BudgetArbiter;
pub use backend::{DirtyTracker, FullDirty, MmuAssisted, SoftwareWalk};
pub use builder::ShardedViyojitBuilder;
pub use degrade::{DegradationConfig, DegradationGovernor, DegradeReason, DegradedMode};
pub use emergency::{FlushObligation, MAX_FLUSH_ATTEMPTS, RETRY_BACKOFF_BASE, RETRY_BACKOFF_MAX};
pub(crate) use hierarchy::apply_budgets;
pub use hierarchy::{BudgetTree, TenantId, TenantQos, TenantStats};
pub use parallel::{BudgetGrant, ShardControlHandle, ShardDataHandle, ShardStats, ROUND_TIMEOUT};
pub use plane::{ShardControlPlane, ShardDataPlane};
pub use sharded::ShardedViyojit;

use battery_sim::{Battery, PowerModel};
use fault_sim::{crashpoint, CrashSchedule, FaultPlan};
use mem_sim::{AccessError, Mmu, MmuStats, PageId, TlbStats, PAGE_SIZE};
use sim_clock::{Clock, CostModel, SimTime};
use ssd_sim::{Ssd, SsdConfig, SsdStats};
use telemetry::{CostClass, FlushReason, Profiler, Telemetry, TraceEvent, WallKind};

use crate::{
    InvariantViolation, NvHeap, PowerFailureReport, PressureEstimator, RegionId, RegionInfo,
    RegionTable, ThresholdPolicy, UpdateHistory, VictimSelector, ViyojitConfig, ViyojitError,
    ViyojitStats,
};

/// The backend-independent state of one NV-DRAM manager: the simulated
/// substrates (MMU, SSD, clock), the region table, the recency/pressure
/// trackers, the pending-IO list, and the runtime counters.
///
/// Opaque outside the crate; backends reach into it through `pub(crate)`
/// fields. It exists as a named type so [`DirtyTracker`] hooks can take
/// the shared state and the backend state as *separate* borrows.
#[derive(Debug)]
pub struct EngineCore {
    pub(crate) config: ViyojitConfig,
    pub(crate) clock: Clock,
    pub(crate) mmu: Mmu,
    pub(crate) ssd: Ssd,
    pub(crate) regions: RegionTable,
    pub(crate) history: UpdateHistory,
    pub(crate) selector: VictimSelector,
    pub(crate) pressure: PressureEstimator,
    /// Pending flush IOs as `(completion instant, page)`.
    pub(crate) inflight: Vec<(SimTime, PageId)>,
    pub(crate) next_epoch_at: SimTime,
    /// Proactive-copy threshold computed at the last epoch boundary; the
    /// background copier tops up toward it continuously between epochs.
    pub(crate) current_threshold: u64,
    pub(crate) stats: ViyojitStats,
    pub(crate) telemetry: Telemetry,
    /// Virtual-time profiler shared with the MMU and SSD; disabled by
    /// default, in which case every span/charge is a no-op.
    pub(crate) profiler: Profiler,
    /// Fault-injection plan shared with the backing SSD; inactive by
    /// default, in which case every fault hook is an identity and the
    /// engine behaves byte-identically to a build without fault support.
    pub(crate) faults: FaultPlan,
    /// Crash schedule consulted at every state-mutation seam; inactive by
    /// default, in which case each `crashpoint!` check is a null test
    /// charging zero virtual time.
    pub(crate) crashes: CrashSchedule,
}

/// One NV-DRAM manager: the shared Fig. 6 state machine parameterised by
/// a dirty-tracking backend.
///
/// - `Engine<SoftwareWalk>` is [`Viyojit`](crate::Viyojit), the paper's
///   software manager (write-protect faults, PTE dirty-bit walks);
/// - `Engine<MmuAssisted>` is
///   [`MmuAssistedViyojit`](crate::MmuAssistedViyojit), the §5.4 hardware
///   offload (dirty-limit interrupts, shadow-bit recency);
/// - `Engine<FullDirty>` underlies
///   [`NvdramBaseline`](crate::NvdramBaseline), the full-battery
///   comparison system that tracks nothing.
///
/// # Examples
///
/// ```
/// use sim_clock::{Clock, CostModel};
/// use ssd_sim::SsdConfig;
/// use viyojit::{Engine, MmuAssisted, NvHeap, SoftwareWalk, ViyojitConfig};
///
/// fn dirty_after_one_write<B: viyojit::DirtyTracker>() -> u64 {
///     let mut nv = Engine::<B>::new(
///         64,
///         ViyojitConfig::with_budget_pages(8),
///         Clock::new(),
///         CostModel::free(),
///         SsdConfig::instant(),
///     );
///     let r = nv.map(4096).unwrap();
///     nv.write(r, 0, b"same engine, different tracker").unwrap();
///     nv.dirty_count()
/// }
///
/// assert_eq!(dirty_after_one_write::<SoftwareWalk>(), 1);
/// assert_eq!(dirty_after_one_write::<MmuAssisted>(), 1);
/// ```
#[derive(Debug)]
pub struct Engine<B: DirtyTracker> {
    pub(crate) core: EngineCore,
    pub(crate) backend: B,
}

impl<B: DirtyTracker> Engine<B> {
    /// Creates a manager over `total_pages` of NV-DRAM backed by an SSD of
    /// the same capacity. The backend arms its tracking mechanism: the
    /// software walker write-protects every page (Fig. 6 step 1), the
    /// hardware backend arms the MMU dirty limit, the baseline does
    /// nothing.
    pub fn new(
        total_pages: usize,
        config: ViyojitConfig,
        clock: Clock,
        costs: CostModel,
        ssd_config: SsdConfig,
    ) -> Self {
        let mut mmu = Mmu::new(total_pages, clock.clone(), costs);
        let backend = B::init(&mut mmu, &config, total_pages);
        let ssd = Ssd::new(total_pages, ssd_config, clock.clone());
        let next_epoch_at = clock.now() + config.epoch;
        Engine {
            core: EngineCore {
                history: UpdateHistory::new(total_pages, config.history_epochs),
                selector: VictimSelector::new(total_pages, config.target_policy, 0x5eed),
                pressure: PressureEstimator::new(config.pressure_alpha),
                regions: RegionTable::new(total_pages as u64),
                inflight: Vec::new(),
                next_epoch_at,
                current_threshold: config.dirty_budget_pages,
                stats: ViyojitStats::default(),
                telemetry: Telemetry::disabled(),
                profiler: Profiler::disabled(),
                faults: FaultPlan::none(),
                crashes: CrashSchedule::none(),
                config,
                clock,
                mmu,
                ssd,
            },
            backend,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ViyojitConfig {
        &self.core.config
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.core.clock
    }

    /// Pages currently counted against the dirty budget.
    pub fn dirty_count(&self) -> u64 {
        self.backend.dirty_count(&self.core)
    }

    /// Visits the leaf words of the budget-counted page population (see
    /// [`DirtyTracker::for_each_counted_word`]); the parallel sharded
    /// runtime publishes these words into a shared
    /// [`AtomicBitmap2L`](mem_sim::AtomicBitmap2L).
    pub fn for_each_counted_word(&self, mut f: impl FnMut(usize, u64)) {
        self.backend.for_each_counted_word(&self.core, &mut f);
    }

    /// The dirty budget in pages.
    pub fn dirty_budget(&self) -> u64 {
        self.core.config.dirty_budget_pages
    }

    /// Runtime counters.
    pub fn stats(&self) -> ViyojitStats {
        self.core.stats
    }

    /// MMU access counters.
    pub fn mmu_stats(&self) -> MmuStats {
        self.core.mmu.stats()
    }

    /// TLB counters.
    pub fn tlb_stats(&self) -> TlbStats {
        self.core.mmu.tlb_stats()
    }

    /// SSD counters (copy-out traffic; Fig. 9's write rate comes from
    /// `bytes_written`).
    pub fn ssd_stats(&self) -> SsdStats {
        self.core.ssd.stats()
    }

    /// The backing SSD (wear statistics, configuration).
    pub fn ssd(&self) -> &Ssd {
        &self.core.ssd
    }

    /// Attaches a telemetry handle (shared with the backing SSD). The
    /// manager then emits the Fig. 6 trace events and publishes its
    /// counters into the registry at every epoch boundary. Telemetry only
    /// observes the virtual clock, so results are identical with any sink.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.core.ssd.attach_telemetry(telemetry.clone());
        self.core.telemetry = telemetry;
    }

    /// Attaches a virtual-time profiler (shared with the MMU, which charges
    /// per-access hardware costs against it, and the SSD, which accounts
    /// device time off-clock). The engine then wraps its control-flow
    /// phases — fault handling, epoch walks, budget stalls, copy-out waits,
    /// governor actions — in causal spans so every virtual nanosecond is
    /// attributed to exactly one leaf. The profiler only observes the
    /// clock; results are identical with or without one attached.
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        self.core.mmu.attach_profiler(profiler.clone());
        self.core.ssd.attach_profiler(profiler.clone());
        self.core.profiler = profiler;
    }

    /// Attaches a fault-injection plan (shared with the backing SSD, which
    /// consults it on every copier write). With an inactive plan —
    /// [`FaultPlan::none`] — every hook is an identity and behavior is
    /// byte-identical to a run without fault support.
    pub fn attach_faults(&mut self, faults: FaultPlan) {
        self.core.ssd.attach_faults(faults.clone());
        self.core.faults = faults;
    }

    /// The fault plan in force (inactive unless one was attached).
    pub fn faults(&self) -> &FaultPlan {
        &self.core.faults
    }

    /// Attaches a crash schedule. The engine then consults it at every
    /// instrumented state-mutation seam; when the armed `(point, hit)`
    /// pair is reached, the run unwinds with a
    /// [`CrashSignal`](fault_sim::CrashSignal) panic from exactly that
    /// seam, modelling an instantaneous power cut. With an inactive
    /// schedule — [`CrashSchedule::none`] — every check is a null test and
    /// behavior is byte-identical to a run without crash support.
    pub fn attach_crashes(&mut self, crashes: CrashSchedule) {
        self.core.crashes = crashes;
    }

    /// The crash schedule in force (inactive unless one was attached).
    pub fn crashes(&self) -> &CrashSchedule {
        &self.core.crashes
    }

    /// Reads region contents without touching the clock, the MMU access
    /// path, or any tracking state: the oracle's view of memory. Crash
    /// harnesses use this to snapshot the byte image at the instant of an
    /// injected crash and to compare post-recovery contents against a
    /// shadow reference, without the read itself perturbing the run.
    ///
    /// # Errors
    ///
    /// The same range errors as [`NvHeap::read`].
    pub fn peek(&self, region: RegionId, offset: u64, buf: &mut [u8]) -> Result<(), ViyojitError> {
        let addr = self.core.regions.resolve(region, offset, buf.len())?;
        let mut pos = 0usize;
        while pos < buf.len() {
            let at = addr + pos as u64;
            let page = PageId(at / PAGE_SIZE as u64);
            let in_page = (at % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(buf.len() - pos);
            let data = self.core.mmu.page_data(page);
            buf[pos..pos + n].copy_from_slice(&data[in_page..in_page + n]);
            pos += n;
        }
        Ok(())
    }

    /// Live regions.
    pub fn regions(&self) -> impl Iterator<Item = (RegionId, RegionInfo)> + '_ {
        self.core.regions.iter()
    }

    /// Re-derives the dirty budget at runtime — e.g. after a battery cell
    /// failure shrank the available energy (§8). If the dirty population
    /// exceeds the new budget, the caller stalls while pages are flushed
    /// down to it, preserving durability throughout. The hardware backend
    /// additionally re-arms the MMU's dirty limit; the baseline backend
    /// accepts the call but has nothing to bound.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn set_dirty_budget(&mut self, pages: u64) {
        assert!(pages > 0, "dirty budget must allow at least one dirty page");
        // The manager only sees the derived budget; health is reported by
        // whoever derived it (the battery governor), so 1000 here means
        // "not re-measured at this hook".
        self.core.telemetry.emit(|| TraceEvent::BatteryRecalc {
            budget_pages: pages,
            health_permille: 1000,
        });
        self.core.config.dirty_budget_pages = pages;
        B::on_budget_changed(&mut self.core, &mut self.backend, pages);
        stall_until_dirty_at_most(&mut self.core, &mut self.backend, pages, pages);
    }

    /// Simulates an external power failure: whatever the design obliges
    /// the battery to flush is flushed to the SSD. For the tracking
    /// backends that is every page counted dirty — by construction at most
    /// the dirty budget; for the baseline it is the entire capacity.
    ///
    /// Without an attached battery the flush has unbounded time (the
    /// historical analytical contract); with an active fault plan the
    /// executed flush still steps page-by-page, retrying transient write
    /// errors with bounded exponential backoff, and may lose pages whose
    /// retries exhaust. Use [`Engine::power_failure_powered`] to race a
    /// real battery.
    pub fn power_failure(&mut self) -> PowerFailureReport {
        let wall = self.core.telemetry.wall_start();
        let obligation = B::failure_obligation(&mut self.core, &mut self.backend);
        let report = emergency::execute(&mut self.core, obligation, None);
        self.core.telemetry.record_wall(WallKind::Emergency, wall);
        report
    }

    /// Simulates a power failure while `battery` drains at `power`'s
    /// system wattage: the executed emergency flush steps page-by-page on
    /// a local timeline and ends in a typed [`FlushOutcome`] — complete,
    /// pages lost to exhausted retries, or battery exhaustion (every
    /// not-yet-durable page lost). In-flight copier IOs at the failure
    /// instant are folded into the hold-up obligation.
    ///
    /// [`FlushOutcome`]: crate::FlushOutcome
    pub fn power_failure_powered(
        &mut self,
        battery: &Battery,
        power: &PowerModel,
    ) -> PowerFailureReport {
        let wall = self.core.telemetry.wall_start();
        let obligation = B::failure_obligation(&mut self.core, &mut self.backend);
        let report = emergency::execute(&mut self.core, obligation, Some((battery, power)));
        self.core.telemetry.record_wall(WallKind::Emergency, wall);
        report
    }

    /// Feeds the degradation governor fresh signals (the battery gauge's
    /// reported health plus this engine's SSD error counters) and, on a
    /// mode transition, applies the prescribed budget through
    /// [`Engine::set_dirty_budget`] — shrinking stalls writers until the
    /// dirty population fits (the stall-until-safe path); recovery
    /// restores the nominal budget. Returns the applied budget if a
    /// transition happened.
    pub fn govern_degradation(
        &mut self,
        governor: &mut DegradationGovernor,
        reported_health: f64,
    ) -> Option<u64> {
        let ssd = self.core.ssd.stats();
        let budget = governor.observe(reported_health, &ssd)?;
        let _span = self.core.profiler.span(CostClass::GovernorAction);
        let degraded = matches!(governor.mode(), DegradedMode::Degraded(_));
        self.core
            .telemetry
            .emit(|| TraceEvent::DegradedModeChanged {
                degraded,
                budget_pages: budget,
            });
        self.set_dirty_budget(budget);
        Some(budget)
    }

    /// Rebuilds NV-DRAM from the SSD after a power cycle: every page is
    /// reloaded from its durable copy (zeroes if never written), the
    /// backend re-arms its tracking, and the trackers restart empty.
    /// Region mappings survive (their metadata lives in the flushed
    /// superblock).
    pub fn recover(&mut self) {
        B::recover_memory(&mut self.core, &mut self.backend);
        if B::HAS_CONTROL_LOOP {
            self.core.history.reset();
            self.core.selector.reset();
            self.core.pressure.reset();
            self.core.inflight.clear();
            self.core.next_epoch_at = self.core.clock.now() + self.core.config.epoch;
        }
    }

    /// Checks every internal invariant, most importantly the paper's
    /// durability guarantee `dirty_count <= dirty_budget`. O(pages);
    /// intended for tests and property checks.
    ///
    /// # Errors
    ///
    /// The first [`InvariantViolation`] found.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        self.backend.check_invariants(&self.core)
    }

    /// Panicking wrapper over [`Engine::check_invariants`] for tests.
    ///
    /// # Panics
    ///
    /// Panics with the violation's `Display` text if any invariant is
    /// violated.
    pub fn validate(&self) {
        if let Err(violation) = self.check_invariants() {
            panic!("{violation}");
        }
    }

    /// `true` if every clean mapped page matches its durable copy — the
    /// invariant that makes [`Engine::power_failure`]'s bounded flush
    /// sufficient for full durability.
    pub fn durable_state_consistent(&self) -> bool {
        self.backend.durable_state_consistent(&self.core)
    }
}

impl<B: DirtyTracker> NvHeap for Engine<B> {
    fn map(&mut self, len_bytes: u64) -> Result<RegionId, ViyojitError> {
        // Tracked pages are already armed (protection or dirty limit, done
        // at startup), matching Fig. 6 step 1.
        self.core.regions.map(len_bytes)
    }

    fn unmap(&mut self, region: RegionId) -> Result<(), ViyojitError> {
        let info = self.core.regions.info(region)?;
        B::unmap_region(&mut self.core, &mut self.backend, &info);
        self.core.regions.unmap(region)?;
        Ok(())
    }

    fn read(&mut self, region: RegionId, offset: u64, buf: &mut [u8]) -> Result<(), ViyojitError> {
        let addr = self.core.regions.resolve(region, offset, buf.len())?;
        poll(&mut self.core, &mut self.backend);
        self.core
            .mmu
            .read(addr, buf)
            .expect("resolved addresses are in range");
        poll(&mut self.core, &mut self.backend);
        Ok(())
    }

    fn write(&mut self, region: RegionId, offset: u64, data: &[u8]) -> Result<(), ViyojitError> {
        let mut addr = self.core.regions.resolve(region, offset, data.len())?;
        poll(&mut self.core, &mut self.backend);
        let mut rest = data;
        while !rest.is_empty() {
            let in_page = PAGE_SIZE - (addr as usize % PAGE_SIZE);
            let n = in_page.min(rest.len());
            let (chunk, tail) = rest.split_at(n);
            loop {
                match self.core.mmu.write(addr, chunk) {
                    Ok(()) => break,
                    Err(e @ AccessError::OutOfRange { .. }) => {
                        unreachable!("resolved addresses are in range: {e}")
                    }
                    Err(err) => B::on_write_error(&mut self.core, &mut self.backend, err),
                }
            }
            addr += n as u64;
            rest = tail;
        }
        poll(&mut self.core, &mut self.backend);
        Ok(())
    }

    fn region_len(&self, region: RegionId) -> Result<u64, ViyojitError> {
        Ok(self.core.regions.info(region)?.len_bytes)
    }
}

// ----------------------------------------------------------------------
// The shared control flow (Fig. 6), generic over the backend. Free
// functions rather than methods so backend hooks can re-enter them with
// the core and backend as separate borrows.
// ----------------------------------------------------------------------

/// Retires every flush IO whose completion instant has passed, letting
/// the backend move its page clean and release the budget slot.
pub(crate) fn retire_completions<B: DirtyTracker>(core: &mut EngineCore, backend: &mut B) {
    let now = core.clock.now();
    let mut i = 0;
    while i < core.inflight.len() {
        if core.inflight[i].0 <= now {
            let (_, page) = core.inflight.swap_remove(i);
            B::on_flush_complete(core, backend, page);
            core.stats.flushes_completed += 1;
            core.telemetry
                .emit(|| TraceEvent::FlushComplete { page: page.0 });
        } else {
            i += 1;
        }
    }
}

/// Processes any epoch boundaries the virtual clock has crossed.
/// Called from every read/write; cheap when nothing is pending.
///
/// Proactive copies are issued only at epoch boundaries, as in the
/// paper (§5.3 is explicitly "an epoch based approach"); the EWMA
/// threshold exists precisely to leave enough budget slack to absorb
/// the new dirty pages that arrive *between* boundaries.
pub(crate) fn poll<B: DirtyTracker>(core: &mut EngineCore, backend: &mut B) {
    retire_completions(core, backend);
    if !B::HAS_CONTROL_LOOP {
        return;
    }
    let now = core.clock.now();
    if now < core.next_epoch_at {
        return;
    }
    // Fast-forward long idle gaps. Only the first epoch after the gap
    // observes new dirty bits, and the copier needs at most
    // budget/outstanding epochs to drain to its threshold, so epochs
    // beyond `cap` before "now" are no-ops: age the recency history in
    // one step and let the pressure prediction decay to zero, exactly
    // as processing them individually would.
    let pending = (now - core.next_epoch_at).as_nanos() / core.config.epoch.as_nanos() + 1;
    let cap = core.config.history_epochs as u64
        + core.config.dirty_budget_pages / core.config.max_outstanding_ios as u64
        + 2;
    if pending > cap {
        let skipped = pending - cap;
        core.history.advance_epochs(skipped);
        core.pressure.reset();
        backend.on_epochs_skipped();
        core.next_epoch_at += core.config.epoch * skipped;
        core.stats.epochs_fast_forwarded += skipped;
    }
    while core.clock.now() >= core.next_epoch_at {
        run_epoch(core, backend);
        core.next_epoch_at += core.config.epoch;
    }
}

/// One epoch boundary (§5.2 + §5.3): the backend walks/discovers dirty
/// pages and refreshes recency, then the shared flow updates pressure
/// and issues proactive copies down to the threshold.
pub(crate) fn run_epoch<B: DirtyTracker>(core: &mut EngineCore, backend: &mut B) {
    core.stats.epochs += 1;
    core.history.advance_epoch();
    let epoch = core.history.current_epoch();
    core.profiler.set_epoch(epoch);
    let _span = core.profiler.span(CostClass::EpochWalk);

    let (walked, new_dirty) = B::epoch_walk(core, backend);
    // Power cut mid-epoch: recency refreshed but the pressure/threshold
    // update and proactive copies never happen.
    crashpoint!(core.crashes, EpochWalk);
    core.telemetry.emit(|| TraceEvent::EpochWalk {
        epoch,
        walked,
        new_dirty,
    });
    if core.config.tlb_flush_on_walk {
        core.telemetry.emit(|| TraceEvent::TlbFlush { epoch });
    }

    core.pressure.observe(new_dirty);
    core.current_threshold = match core.config.threshold_policy {
        ThresholdPolicy::Adaptive => core.pressure.threshold(core.config.dirty_budget_pages),
        ThresholdPolicy::FixedSlack(slack) => core.config.dirty_budget_pages.saturating_sub(slack),
    };

    retire_completions(core, backend);
    // Issue enough copies that, once in-flight IOs drain, the dirty
    // population sits at the threshold. In-flight pages still count
    // against the budget (their bytes are not durable yet) but need no
    // further action, so the copier compares the not-yet-flushing
    // population to the threshold.
    issue_proactive_down_to(core, backend, core.current_threshold);
    publish_metrics(core, backend);
    core.telemetry.snapshot_epoch(epoch);
}

/// Issues proactive copies until the not-yet-flushing dirty population
/// is at most `threshold` or the outstanding-IO cap is reached.
pub(crate) fn issue_proactive_down_to<B: DirtyTracker>(
    core: &mut EngineCore,
    backend: &mut B,
    threshold: u64,
) {
    while backend
        .dirty_count(core)
        .saturating_sub(backend.in_flight_pages())
        > threshold
        && core.inflight.len() < core.config.max_outstanding_ios
    {
        let Some(victim) = core.selector.peek() else {
            break; // everything dirty is already in flight
        };
        issue_flush(core, backend, victim, FlushReason::Proactive);
    }
}

/// Re-protects `victim`, snapshots it, and submits its flush (Fig. 6
/// steps 6-7). Write-protecting *before* the SSD write is what makes
/// the snapshot safe against concurrent updates (§5.1).
pub(crate) fn issue_flush<B: DirtyTracker>(
    core: &mut EngineCore,
    backend: &mut B,
    victim: PageId,
    reason: FlushReason,
) {
    let wall = core.telemetry.wall_start();
    core.telemetry.emit(|| TraceEvent::FlushIssued {
        page: victim.0,
        reason,
        last_update_epoch: core.history.last_update_epoch(victim),
    });
    core.mmu.protect_page(victim);
    B::mark_in_flight(core, backend, victim);
    core.selector.on_removed(victim);
    let data = core.mmu.page_data(victim).to_vec();
    let physical = B::flush_payload(core, backend, victim, &data);
    // Copier writes go through the fallible submit so an active fault
    // plan can inject transient errors; each failed attempt occupies its
    // channel (naturally serialising the retry behind it) and is retried
    // up to the emergency executor's attempt cap, after which the write
    // is forced through — a runtime copy must eventually land, only the
    // emergency flush is allowed to abandon pages. With an inactive plan
    // the fallible path never errs and is byte-identical to the plain
    // submit.
    let mut attempt = 1u32;
    let done = loop {
        match core.ssd.try_submit_write_sized(victim, &data, physical) {
            Ok(done) => break done,
            Err(err) => {
                core.stats.flush_retries += 1;
                let backoff = err.retry_after.saturating_since(core.clock.now());
                core.telemetry.emit(|| TraceEvent::FlushRetry {
                    page: victim.0,
                    attempt,
                    backoff_nanos: backoff.as_nanos(),
                });
                if attempt >= MAX_FLUSH_ATTEMPTS {
                    break core.ssd.submit_write_sized(victim, &data, physical);
                }
                attempt += 1;
            }
        }
    };
    core.inflight.push((done, victim));
    // Power cut with the IO just submitted: the page is write-protected
    // and in flight but nothing has retired it.
    crashpoint!(core.crashes, FlushInFlight);
    core.stats.bytes_flushed += PAGE_SIZE as u64;
    if B::TRACKS_PHYSICAL {
        core.stats.physical_bytes_flushed += physical as u64;
    }
    match reason {
        FlushReason::Proactive => core.stats.proactive_flushes += 1,
        FlushReason::Forced => core.stats.forced_flushes += 1,
    }
    core.telemetry.record_wall(WallKind::Flush, wall);
}

/// Stalls (advancing the virtual clock through SSD completions) until at
/// most `limit` pages are counted dirty, issuing forced flushes as
/// needed. `event_budget` is the budget figure the `BudgetStall` trace
/// event reports: the software fault handler stalls to `budget - 1` but
/// reports the admission limit, while the hardware interrupt and the §8
/// budget hook report the budget itself.
pub(crate) fn stall_until_dirty_at_most<B: DirtyTracker>(
    core: &mut EngineCore,
    backend: &mut B,
    limit: u64,
    event_budget: u64,
) {
    let mut stalled = false;
    let mut span = None;
    while backend.dirty_count(core) > limit {
        // Open the span lazily so calls that find the budget already
        // satisfied leave no trace (they move no virtual time either).
        if span.is_none() {
            span = Some(core.profiler.span(CostClass::BudgetStall));
        }
        if core.inflight.is_empty() {
            let victim = B::pick_forced_victim(core, backend);
            issue_flush(core, backend, victim, FlushReason::Forced);
        }
        let earliest = core
            .inflight
            .iter()
            .map(|&(t, _)| t)
            .min()
            .expect("at least one IO in flight");
        let before = core.clock.now();
        core.clock.advance_to(earliest);
        core.stats.stall_time += core.clock.now().saturating_since(before);
        if !stalled {
            core.stats.budget_stalls += 1;
            stalled = true;
            let dirty = backend.dirty_count(core);
            core.telemetry.emit(|| TraceEvent::BudgetStall {
                dirty,
                budget: event_budget,
            });
        }
        retire_completions(core, backend);
    }
}

/// Advances the clock to the completion of `page`'s pending IO and
/// retires it. The caller must know the page is in flight.
pub(crate) fn wait_for_page_io<B: DirtyTracker>(
    core: &mut EngineCore,
    backend: &mut B,
    page: PageId,
) {
    let done = core
        .inflight
        .iter()
        .find(|&&(_, p)| p == page)
        .map(|&(t, _)| t)
        .expect("in-flight page has a pending IO");
    let _span = core.profiler.span(CostClass::CopyOutIo);
    core.clock.advance_to(done);
    retire_completions(core, backend);
}

/// Publishes runtime counters, pressure state, and SSD state into the
/// attached metrics registry. No-op when telemetry is disabled.
pub(crate) fn publish_metrics<B: DirtyTracker>(core: &mut EngineCore, backend: &mut B) {
    if !core.telemetry.is_enabled() {
        return;
    }
    let stats = core.stats;
    let dirty = backend.dirty_count(core);
    let in_flight = backend.in_flight_pages();
    let threshold = core.current_threshold;
    let predicted = core.pressure.predicted();
    core.telemetry.metrics(|m| {
        m.counter_set("viyojit.faults_handled", stats.faults_handled);
        m.counter_set("viyojit.pages_dirtied", stats.pages_dirtied);
        m.counter_set("viyojit.proactive_flushes", stats.proactive_flushes);
        m.counter_set("viyojit.forced_flushes", stats.forced_flushes);
        m.counter_set("viyojit.flushes_completed", stats.flushes_completed);
        m.counter_set("viyojit.budget_stalls", stats.budget_stalls);
        m.counter_set("viyojit.stall_nanos", stats.stall_time.as_nanos());
        m.counter_set("viyojit.in_flight_collisions", stats.in_flight_collisions);
        m.counter_set("viyojit.epochs", stats.epochs);
        m.counter_set("viyojit.bytes_flushed", stats.bytes_flushed);
        if B::TRACKS_PHYSICAL {
            m.counter_set(
                "viyojit.physical_bytes_flushed",
                stats.physical_bytes_flushed,
            );
        }
        m.counter_set("viyojit.walk_touches", stats.walk_touches);
        if stats.flush_retries > 0 {
            m.counter_set("viyojit.flush_retries", stats.flush_retries);
        }
        m.gauge_set("viyojit.dirty_pages", dirty as f64);
        m.gauge_set("viyojit.in_flight_pages", in_flight as f64);
        m.gauge_set("viyojit.proactive_threshold", threshold as f64);
        m.gauge_set("viyojit.predicted_pressure", predicted);
    });
    // Dispatch-path totals are host-side (which scan path a run took is a
    // wall fact, not a virtual one), so they go to the wall plane, never
    // the registry — snapshots and goldens stay byte-identical.
    let dispatch = mem_sim::dispatch::snapshot();
    core.telemetry
        .set_wall_counter("bitmap.dispatch.skip", dispatch.skip);
    core.telemetry
        .set_wall_counter("bitmap.dispatch.dense", dispatch.dense);
    core.telemetry
        .set_wall_counter("bitmap.dispatch.unrolled", dispatch.unrolled);
    core.ssd.publish_metrics();
}
