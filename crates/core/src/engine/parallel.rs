//! The thread-parallel sharded runtime: one worker per group of shards,
//! one arbiter thread, message-passing rebalance rounds.
//!
//! [`ShardedViyojitBuilder::build_parallel`] spawns `min(threads,
//! shards)` worker threads — each taking *ownership* of its shards'
//! [`Engine`]s and running them on its own virtual clock — plus one
//! arbiter thread owning the [`BudgetArbiter`]. The monolithic facade is
//! split into the two handles the plane traits describe:
//!
//! - [`ShardDataHandle`] implements [`NvHeap`] + [`ShardDataPlane`]:
//!   writes are validated against a local route mirror and staged per
//!   worker (batches of [`WRITE_BATCH`]), reads are synchronous
//!   request/reply, `step` drives the shared driver timeline;
//! - [`ShardControlHandle`] implements [`ShardControlPlane`]: every call
//!   is a query or a rebalance round over channels.
//!
//! A rebalance **round** replaces the sequential frontend's synchronous
//! loop with messages, preserving its exact two-phase order: the
//! initiator broadcasts `Round{id}` to the workers and `StartRound` to
//! the arbiter; each worker reports a [`ShardStats`] per shard and blocks
//! on its grant channel; the arbiter plans, sends the *shrink*
//! [`BudgetGrant`]s, barriers on every worker's `ShrinkDone`, sends the
//! *grow* grants, collects post-apply stats, commits, publishes the
//! per-shard gauges, and releases the workers — so the instantaneous sum
//! of assigned budgets never exceeds the battery, even observed
//! mid-round. Rounds are serialized by a mutex on the driver timeline, so
//! the data plane never blocks on the control plane outside an explicit
//! `step` that crosses a rebalance boundary.
//!
//! Cross-thread dirty visibility: each worker publishes its shards'
//! counted-dirty leaf words (via
//! [`Engine::for_each_counted_word`]) into one shared
//! [`AtomicBitmap2L`], shard `s` occupying the word-aligned stride
//! `[s*W, (s+1)*W)`. Writers touch disjoint words, so the published map
//! is exact at every `Tick`/`sync`/round boundary.
//!
//! Determinism: with [`CostModel::free`] and [`SsdConfig::instant`]
//! (where clocks move only on explicit `step`), a single driver observes
//! bit-identical [`ViyojitStats`], power-failure reports, and memory
//! contents from the sequential frontend and from this runtime at any
//! thread count — the equivalence property tests assert exactly that.
//!
//! Supervision: a worker panic is caught at the command loop. Within the
//! builder's restart budget the worker reports `ShardPanicked`, runs the
//! real emergency flush from whatever intermediate state the unwind left
//! behind, reloads its shards from durable contents, pins them to the
//! budget floor, and rejoins (`ShardRespawned`). The arbiter quarantines
//! the thread in between, substituting floor-pinned zero-demand stats in
//! rounds so the tree's burst-first reclaim hands the freed budget to
//! sibling shards until `WorkerRecovered` lifts the quarantine. Beyond
//! the restart budget a panic degrades to the fatal
//! [`ViyojitError::ShardFailed`] path, exactly as before supervision.
//! Every blocking wait on a worker or arbiter reply carries the
//! [`ROUND_TIMEOUT`] deadline, so a wedged (alive but silent) thread
//! surfaces as [`ViyojitError::RoundTimeout`] instead of a hang.
//!
//! [`ShardedViyojitBuilder::build_parallel`]:
//!     super::ShardedViyojitBuilder::build_parallel
//! [`CostModel::free`]: sim_clock::CostModel::free
//! [`SsdConfig::instant`]: ssd_sim::SsdConfig::instant

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use battery_sim::{Battery, PowerModel};
use fault_sim::CrashSignal;
use mem_sim::AtomicBitmap2L;
use sim_clock::{Clock, SimDuration, SimTime};
use ssd_sim::SsdStats;
use telemetry::{
    intern_metric_name, FlightRecorder, Profiler, Telemetry, TenantMetricNames, TraceEvent,
    WallKind,
};

use crate::{
    FlushOutcome, InvariantViolation, NvHeap, PowerFailureReport, RegionId, ViyojitError,
    ViyojitStats,
};

use super::builder::ShardedViyojitBuilder;
use super::plane::{ShardControlPlane, ShardDataPlane};
use super::{
    BudgetTree, DegradationGovernor, DegradedMode, DirtyTracker, Engine, TenantId, TenantQos,
    TenantStats,
};

/// Staged writes per worker before a batch is shipped.
pub const WRITE_BATCH: usize = 64;

/// Wall-clock deadline for any single wait on a worker or arbiter reply.
/// Healthy exchanges complete in microseconds; a thread silent this long
/// is wedged (alive but stuck), and the caller aborts with
/// [`ViyojitError::RoundTimeout`] instead of blocking forever.
pub const ROUND_TIMEOUT: Duration = Duration::from_secs(10);

/// One shard's demand report, sent from its worker thread to the arbiter
/// at the start of every rebalance round (and again, post-apply, as the
/// commit baseline).
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Global shard index.
    pub shard: usize,
    /// The shard engine's runtime counters.
    pub stats: ViyojitStats,
    /// Pages the shard currently counts dirty.
    pub dirty_pages: u64,
    /// The shard's currently assigned budget.
    pub budget_pages: u64,
}

/// A budget assignment for one shard, sent from the arbiter thread back
/// to the shard's worker during a round (shrink phase first, then grow).
#[derive(Debug, Clone, Copy)]
pub struct BudgetGrant {
    /// Global shard index.
    pub shard: usize,
    /// The new budget the shard must adopt.
    pub budget_pages: u64,
}

struct StagedWrite {
    shard: usize,
    local: RegionId,
    offset: u64,
    data: Vec<u8>,
}

enum ShardCmd {
    WriteBatch(Vec<StagedWrite>),
    Read {
        shard: usize,
        local: RegionId,
        offset: u64,
        len: usize,
        reply: Sender<Result<Vec<u8>, ViyojitError>>,
    },
    Map {
        shard: usize,
        len_bytes: u64,
        reply: Sender<Result<RegionId, ViyojitError>>,
    },
    Unmap {
        shard: usize,
        local: RegionId,
        reply: Sender<Result<(), ViyojitError>>,
    },
    Tick(SimDuration),
    Round {
        id: u64,
    },
    Sync {
        reply: Sender<()>,
    },
    Query {
        query: CtrlQuery,
        reply: Sender<CtrlReply>,
    },
}

enum CtrlQuery {
    Stats,
    SsdStats,
    PowerFailure,
    PowerFailurePowered(Box<(Battery, PowerModel)>),
    Recover,
    Invariants,
}

enum CtrlReply {
    Stats(Vec<ShardStats>),
    /// `(global shard index, stats)` per owned shard, so the control
    /// handle can aggregate per tenant as well as machine-wide.
    Ssd(Vec<(usize, SsdStats)>),
    Failure(Vec<PowerFailureReport>),
    Done,
    Invariants {
        assigned: u64,
        dirty: u64,
        violation: Option<InvariantViolation>,
    },
}

enum GrantMsg {
    Shrink(u64, Vec<BudgetGrant>),
    Grow(u64, Vec<BudgetGrant>),
    Done(u64),
}

enum RoundKind {
    Demand,
    SetTotal(u64),
    Throttle { tenant: usize, cap: Option<u64> },
}

enum ArbiterMsg {
    StartRound {
        id: u64,
        kind: RoundKind,
        reply: Sender<Result<(), ViyojitError>>,
    },
    Stats {
        round: u64,
        stats: ShardStats,
    },
    ShrinkDone {
        round: u64,
    },
    CommitStats {
        round: u64,
        stats: ShardStats,
    },
    Rebalances {
        reply: Sender<u64>,
    },
    ThreadDown {
        first_shard: usize,
    },
    /// A worker caught a panic and is restoring its shards from durable
    /// state; the arbiter quarantines it until `WorkerRecovered`.
    WorkerPanicked {
        thread: usize,
    },
    /// The panicked worker finished recovery and rejoined its command
    /// loop; its shards report real stats again from the next round on.
    WorkerRecovered {
        thread: usize,
    },
}

/// The driver's view of the shared timeline. Rounds are serialized under
/// this mutex, which also makes round-id allocation race-free.
struct RoundState {
    next_round_id: u64,
    virtual_now: SimTime,
    next_rebalance_at: SimTime,
}

struct Runtime {
    shard_txs: Vec<Sender<ShardCmd>>,
    arbiter_tx: Option<Sender<ArbiterMsg>>,
    rounds: Mutex<RoundState>,
    error: Arc<Mutex<Option<ViyojitError>>>,
    dirty_map: Arc<AtomicBitmap2L>,
    thread_of_shard: Vec<usize>,
    total_budget: AtomicU64,
    min_per_shard: u64,
    shards: usize,
    rebalance_period: SimDuration,
    /// Tenant of each global shard (the tree itself lives on the arbiter
    /// thread; this mirror is immutable routing metadata).
    tenant_of_shard: Vec<usize>,
    tenant_names: Vec<String>,
    tenant_qos: Vec<TenantQos>,
    tenant_metric_names: Vec<TenantMetricNames>,
    /// Mirror of each tenant's applied throttle cap (kept in sync by the
    /// control handle, which is the only throttle initiator).
    tenant_throttled: Mutex<Vec<Option<u64>>>,
    /// Pages each tenant has lost to power failures so far.
    tenant_pages_lost: Mutex<Vec<u64>>,
    joins: Mutex<Vec<JoinHandle<()>>>,
    arbiter_join: Mutex<Option<JoinHandle<()>>>,
}

impl Runtime {
    fn lock_rounds(&self) -> std::sync::MutexGuard<'_, RoundState> {
        self.rounds.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The error a dead worker thread maps to: its first owned shard.
    fn thread_failed(&self, thread: usize) -> ViyojitError {
        ViyojitError::ShardFailed { shard: thread }
    }

    fn send_to_thread(&self, thread: usize, cmd: ShardCmd) -> Result<(), ViyojitError> {
        self.shard_txs[thread]
            .send(cmd)
            .map_err(|_| self.thread_failed(thread))
    }

    fn arbiter_send(&self, msg: ArbiterMsg) -> Result<(), ViyojitError> {
        self.arbiter_tx
            .as_ref()
            .expect("arbiter sender lives as long as the runtime")
            .send(msg)
            .map_err(|_| ViyojitError::ShardFailed { shard: 0 })
    }

    /// Runs one rebalance round with the timeline lock already held.
    fn round_locked(&self, rs: &mut RoundState, kind: RoundKind) -> Result<(), ViyojitError> {
        let id = rs.next_round_id;
        rs.next_round_id += 1;
        let (reply_tx, reply_rx) = channel();
        self.arbiter_send(ArbiterMsg::StartRound {
            id,
            kind,
            reply: reply_tx,
        })?;
        // A failed send means that worker died; the arbiter learns of it
        // through the worker's ThreadDown and aborts the round, so the
        // reply below still arrives.
        for tx in &self.shard_txs {
            let _ = tx.send(ShardCmd::Round { id });
        }
        reply_rx.recv_timeout(ROUND_TIMEOUT).map_err(|e| match e {
            RecvTimeoutError::Timeout => ViyojitError::RoundTimeout,
            RecvTimeoutError::Disconnected => ViyojitError::ShardFailed { shard: 0 },
        })?
    }

    fn take_async_error(&self) -> Result<(), ViyojitError> {
        match self
            .error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Closing the command channels ends the worker loops; the workers
        // then drop their arbiter senders, and closing ours ends the
        // arbiter loop.
        std::mem::take(&mut self.shard_txs);
        for j in std::mem::take(self.joins.get_mut().unwrap_or_else(PoisonError::into_inner)) {
            let _ = j.join();
        }
        self.arbiter_tx = None;
        if let Some(j) = self
            .arbiter_join
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            let _ = j.join();
        }
    }
}

// ----------------------------------------------------------------------
// Worker threads
// ----------------------------------------------------------------------

/// Classifies a caught panic payload into a stable postmortem trigger:
/// an injected crash names its seam, anything else is a plain `panic`.
fn panic_trigger(payload: &(dyn std::any::Any + Send)) -> String {
    match payload.downcast_ref::<CrashSignal>() {
        Some(signal) => format!("crash_signal:{}", signal.point.name()),
        None => "panic".to_string(),
    }
}

struct Worker<B: DirtyTracker> {
    /// `(global shard index, engine)`, ascending by shard index.
    engines: Vec<(usize, Engine<B>)>,
    profiler: Profiler,
    /// Per-engine profiler frame names (`shard{i}`).
    frames: Vec<&'static str>,
    rx: Receiver<ShardCmd>,
    grant_rx: Receiver<GrantMsg>,
    arbiter_tx: Sender<ArbiterMsg>,
    clock: Clock,
    dirty_map: Arc<AtomicBitmap2L>,
    /// Words per shard in the shared dirty map.
    stride: usize,
    /// Last published words, one shadow per engine — diffed so a Tick
    /// only stores words that changed.
    shadow: Vec<Vec<u64>>,
    scratch: Vec<u64>,
    error: Arc<Mutex<Option<ViyojitError>>>,
    /// This worker's thread index (the arbiter's quarantine key).
    thread: usize,
    /// Panics this worker may absorb by respawning from durable state
    /// before one degrades to the fatal ThreadDown path (0 = every panic
    /// is fatal, the pre-supervision behaviour).
    restart_budget: u32,
    restarts: u32,
    /// The cluster's per-shard budget floor: a respawned worker pins its
    /// engines here until the next round replans them.
    min_per_shard: u64,
    /// This worker's telemetry shard: every record locks only this
    /// thread's own recorder, never a shared one.
    telemetry: Telemetry,
    /// Black-box writer; a caught panic or round timeout dumps this
    /// thread's trace window before recovery proceeds.
    flight: Option<Arc<FlightRecorder>>,
    /// The most recent budget round this worker participated in, stamped
    /// into postmortem dumps.
    last_round: u64,
}

impl<B: DirtyTracker> Worker<B> {
    fn run(mut self) {
        while let Ok(cmd) = self.rx.recv() {
            let caught = catch_unwind(AssertUnwindSafe(|| self.handle(cmd)));
            if let Err(payload) = caught {
                self.dump_black_box(&panic_trigger(payload.as_ref()));
                if self.restarts < self.restart_budget {
                    self.restarts += 1;
                    self.respawn();
                    continue;
                }
                let first = self.engines.first().map_or(0, |&(s, _)| s);
                self.record_error(ViyojitError::ShardFailed { shard: first });
                let _ = self
                    .arbiter_tx
                    .send(ArbiterMsg::ThreadDown { first_shard: first });
                break;
            }
        }
    }

    /// Dumps this thread's flight-recorder black box. Best-effort: the
    /// crash path must never die on a full disk.
    fn dump_black_box(&self, trigger: &str) {
        if let Some(flight) = &self.flight {
            let label = format!("worker{}", self.thread);
            let _ = flight.dump(&label, trigger, self.last_round, &self.telemetry);
        }
    }

    /// Self-recovery after a caught panic: quarantine with the arbiter,
    /// run the real emergency flush from whatever intermediate state the
    /// unwind left behind, reload every owned engine from its durable
    /// contents, pin the budgets to the floor (freeing the remainder for
    /// sibling shards while quarantined — the tree replans at the next
    /// round), and rejoin the command loop.
    fn respawn(&mut self) {
        let first = self.engines.first().map_or(0, |&(s, _)| s);
        let restarts = u64::from(self.restarts);
        self.telemetry.emit(|| TraceEvent::ShardPanicked {
            shard: first as u64,
            restarts,
        });
        let _ = self.arbiter_tx.send(ArbiterMsg::WorkerPanicked {
            thread: self.thread,
        });
        let mut pages_lost = 0u64;
        for (_, e) in &mut self.engines {
            pages_lost += e.power_failure().pages_lost;
            e.recover();
            // Free after recovery (nothing is dirty), and it keeps the
            // cluster-wide sum of assigned budgets under the battery while
            // the arbiter hands this thread's share to siblings.
            e.set_dirty_budget(self.min_per_shard);
        }
        self.publish_dirty();
        self.telemetry.emit(|| TraceEvent::ShardRespawned {
            shard: first as u64,
            pages_lost,
        });
        let _ = self.arbiter_tx.send(ArbiterMsg::WorkerRecovered {
            thread: self.thread,
        });
    }

    fn record_error(&self, e: ViyojitError) {
        self.error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_or_insert(e);
    }

    fn engine_idx(&self, shard: usize) -> usize {
        self.engines
            .iter()
            .position(|&(s, _)| s == shard)
            .expect("commands are routed to the owning worker")
    }

    fn snapshot(shard: usize, e: &Engine<B>) -> ShardStats {
        ShardStats {
            shard,
            stats: e.stats(),
            dirty_pages: e.dirty_count(),
            budget_pages: e.dirty_budget(),
        }
    }

    /// Publishes each owned shard's counted-dirty words into the shared
    /// map as one batched diff against the last publication: unchanged
    /// 8-word runs are skipped with a single compare, mostly-changed
    /// slices fall back to straight-line stores, and the popcount /
    /// summary / run-tier maintenance is amortized over the whole slice
    /// instead of paying 3–4 RMWs per `store_word`.
    fn publish_dirty(&mut self) {
        for (idx, (shard, engine)) in self.engines.iter().enumerate() {
            self.scratch[..self.stride].fill(0);
            let scratch = &mut self.scratch;
            engine.for_each_counted_word(|w, bits| scratch[w] |= bits);
            let shadow = &mut self.shadow[idx];
            self.dirty_map.publish_words(
                shard * self.stride,
                &self.scratch[..self.stride],
                &mut shadow[..self.stride],
            );
        }
    }

    fn handle(&mut self, cmd: ShardCmd) {
        match cmd {
            ShardCmd::WriteBatch(batch) => {
                for w in batch {
                    let idx = self.engine_idx(w.shard);
                    let _scope = self.profiler.scope(self.frames[idx]);
                    if let Err(e) = self.engines[idx].1.write(w.local, w.offset, &w.data) {
                        self.record_error(e);
                    }
                }
            }
            ShardCmd::Read {
                shard,
                local,
                offset,
                len,
                reply,
            } => {
                let idx = self.engine_idx(shard);
                let mut buf = vec![0u8; len];
                let result = {
                    let _scope = self.profiler.scope(self.frames[idx]);
                    self.engines[idx].1.read(local, offset, &mut buf)
                };
                let _ = reply.send(result.map(|()| buf));
            }
            ShardCmd::Map {
                shard,
                len_bytes,
                reply,
            } => {
                let idx = self.engine_idx(shard);
                let _ = reply.send(self.engines[idx].1.map(len_bytes));
            }
            ShardCmd::Unmap {
                shard,
                local,
                reply,
            } => {
                let idx = self.engine_idx(shard);
                let _ = reply.send(self.engines[idx].1.unmap(local));
            }
            ShardCmd::Tick(d) => {
                self.clock.advance(d);
                self.publish_dirty();
            }
            ShardCmd::Sync { reply } => {
                self.publish_dirty();
                let _ = reply.send(());
            }
            ShardCmd::Round { id } => self.participate(id),
            ShardCmd::Query { query, reply } => {
                let _ = reply.send(self.query(query));
            }
        }
    }

    fn participate(&mut self, id: u64) {
        self.last_round = id;
        let wall = self.telemetry.wall_start();
        for (shard, e) in &self.engines {
            let _ = self.arbiter_tx.send(ArbiterMsg::Stats {
                round: id,
                stats: Self::snapshot(*shard, e),
            });
        }
        // Power cut between the stats upload and the grant download: the
        // arbiter holds this worker's demand but no grant was applied.
        if let Some((_, e)) = self.engines.first() {
            fault_sim::crashpoint!(e.crashes(), BudgetRound);
        }
        loop {
            match self.grant_rx.recv_timeout(ROUND_TIMEOUT) {
                Ok(GrantMsg::Shrink(rid, grants)) if rid == id => {
                    for g in grants {
                        let idx = self.engine_idx(g.shard);
                        let _scope = self.profiler.scope(self.frames[idx]);
                        self.engines[idx].1.set_dirty_budget(g.budget_pages);
                    }
                    let _ = self.arbiter_tx.send(ArbiterMsg::ShrinkDone { round: id });
                }
                Ok(GrantMsg::Grow(rid, grants)) if rid == id => {
                    for g in grants {
                        let idx = self.engine_idx(g.shard);
                        self.engines[idx].1.set_dirty_budget(g.budget_pages);
                    }
                    for (shard, e) in &self.engines {
                        let _ = self.arbiter_tx.send(ArbiterMsg::CommitStats {
                            round: id,
                            stats: Self::snapshot(*shard, e),
                        });
                    }
                }
                Ok(GrantMsg::Done(rid)) if rid == id => break,
                Ok(_) => continue, // stale message from an aborted round
                Err(RecvTimeoutError::Timeout) => {
                    // The arbiter is wedged: surface it and rejoin the
                    // command loop rather than hang the data plane.
                    let thread = self.thread as u64;
                    self.telemetry
                        .emit(|| TraceEvent::RoundTimedOut { round: id, thread });
                    self.telemetry
                        .metrics(|m| m.counter_add("parallel.round_timeouts", 1));
                    self.record_error(ViyojitError::RoundTimeout);
                    self.dump_black_box("round_timeout");
                    break;
                }
                Err(RecvTimeoutError::Disconnected) => break, // shutting down
            }
        }
        self.publish_dirty();
        self.telemetry.record_wall(WallKind::BudgetRound, wall);
    }

    fn query(&mut self, query: CtrlQuery) -> CtrlReply {
        match query {
            CtrlQuery::Stats => CtrlReply::Stats(
                self.engines
                    .iter()
                    .map(|(s, e)| Self::snapshot(*s, e))
                    .collect(),
            ),
            CtrlQuery::SsdStats => CtrlReply::Ssd(
                self.engines
                    .iter()
                    .map(|(s, e)| (*s, e.ssd_stats()))
                    .collect(),
            ),
            CtrlQuery::PowerFailure => CtrlReply::Failure(
                self.engines
                    .iter_mut()
                    .map(|(_, e)| e.power_failure())
                    .collect(),
            ),
            CtrlQuery::PowerFailurePowered(bp) => {
                let (battery, power) = &*bp;
                CtrlReply::Failure(
                    self.engines
                        .iter_mut()
                        .map(|(_, e)| e.power_failure_powered(battery, power))
                        .collect(),
                )
            }
            CtrlQuery::Recover => {
                for (_, e) in &mut self.engines {
                    e.recover();
                }
                self.publish_dirty();
                CtrlReply::Done
            }
            CtrlQuery::Invariants => {
                let mut assigned = 0;
                let mut dirty = 0;
                let mut violation = None;
                for (_, e) in &self.engines {
                    assigned += e.dirty_budget();
                    dirty += e.dirty_count();
                    if violation.is_none() {
                        violation = e.check_invariants().err();
                    }
                }
                CtrlReply::Invariants {
                    assigned,
                    dirty,
                    violation,
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// The arbiter thread
// ----------------------------------------------------------------------

struct ArbiterThread {
    tree: BudgetTree,
    rx: Receiver<ArbiterMsg>,
    grant_txs: Vec<Sender<GrantMsg>>,
    thread_of_shard: Vec<usize>,
    telemetry: Telemetry,
    /// Per-shard `(dirty_pages, budget_pages)` gauge names.
    gauge_names: Vec<(&'static str, &'static str)>,
    /// Per-tenant metric names, indexed by tenant.
    tenant_metric_names: Vec<TenantMetricNames>,
    /// First shard of a worker thread known to have died; poisons all
    /// subsequent rounds.
    dead: Option<usize>,
    /// Threads quarantined by supervision: panicked, restoring from
    /// durable state. Their shards take part in rounds with synthesized
    /// floor-pinned zero-demand stats, so the tree's burst-first reclaim
    /// hands their budget to siblings until `WorkerRecovered` lifts it.
    quarantined: Vec<bool>,
    /// Threads that dropped out of the round currently in flight (they
    /// panicked after it started): recovery lifts `quarantined`, but a
    /// rejoined worker only participates again from the *next* round, so
    /// barrier and stats accounting for this round must still skip it.
    round_down: Vec<bool>,
}

impl ArbiterThread {
    fn run(mut self) {
        while let Ok(msg) = self.rx.recv() {
            match msg {
                ArbiterMsg::StartRound { id, kind, reply } => {
                    let result = self.run_round(id, kind);
                    let _ = reply.send(result);
                }
                ArbiterMsg::Rebalances { reply } => {
                    let _ = reply.send(self.tree.rebalances());
                }
                ArbiterMsg::ThreadDown { first_shard } => {
                    self.dead.get_or_insert(first_shard);
                }
                ArbiterMsg::WorkerPanicked { thread } => {
                    self.quarantined[thread] = true;
                }
                ArbiterMsg::WorkerRecovered { thread } => {
                    self.quarantined[thread] = false;
                }
                // Stale round traffic from an aborted round.
                ArbiterMsg::Stats { .. }
                | ArbiterMsg::ShrinkDone { .. }
                | ArbiterMsg::CommitStats { .. } => {}
            }
        }
    }

    /// The error a permanently dead worker maps to.
    fn dead_error(&self) -> ViyojitError {
        ViyojitError::ShardFailed {
            shard: self.dead.unwrap_or(0),
        }
    }

    /// Releases every worker possibly blocked on its grant channel, then
    /// hands `err` back for the round's failure.
    fn abort_round(&mut self, id: u64, err: ViyojitError) -> ViyojitError {
        for tx in &self.grant_txs {
            let _ = tx.send(GrantMsg::Done(id));
        }
        err
    }

    /// Synthesized report for a down thread's shard: floor budget, zero
    /// demand — exactly what its respawning worker pins, and what makes
    /// the tree's plan reclaim the freed budget for siblings burst-first.
    fn quarantine_stats(&self, shard: usize) -> ShardStats {
        ShardStats {
            shard,
            stats: ViyojitStats::default(),
            dirty_pages: 0,
            budget_pages: self.tree.min_per_shard(),
        }
    }

    /// Fills every unanswered slot owned by `thread` with synthesized
    /// quarantine stats, returning how many were newly filled.
    fn synthesize_thread(&self, thread: usize, out: &mut [Option<ShardStats>]) -> usize {
        let mut filled = 0;
        for (s, slot) in out.iter_mut().enumerate() {
            if self.thread_of_shard[s] == thread && slot.is_none() {
                *slot = Some(self.quarantine_stats(s));
                filled += 1;
            }
        }
        filled
    }

    /// Marks `thread` down for the in-flight round (and quarantined for
    /// planning) when its panic arrives mid-round.
    fn mark_round_down(&mut self, thread: usize) {
        self.quarantined[thread] = true;
        self.round_down[thread] = true;
    }

    /// Collects one `ShardStats` per shard for round `id` (the picked
    /// message kind), synthesizing down threads' shards and aborting if a
    /// worker dies outright or stays silent past the deadline.
    fn collect_stats(&mut self, id: u64, commits: bool) -> Result<Vec<ShardStats>, ViyojitError> {
        let n = self.tree.members();
        let mut out: Vec<Option<ShardStats>> = vec![None; n];
        let mut got = 0;
        for t in 0..self.grant_txs.len() {
            if self.round_down[t] {
                got += self.synthesize_thread(t, &mut out);
            }
        }
        while got < n {
            match self.rx.recv_timeout(ROUND_TIMEOUT) {
                Ok(ArbiterMsg::Stats { round, stats }) if !commits && round == id => {
                    // A down thread's real report (it respawned before
                    // joining the round) replaces the synthesized one.
                    if out[stats.shard].replace(stats).is_none() {
                        got += 1;
                    }
                }
                Ok(ArbiterMsg::CommitStats { round, stats }) if commits && round == id => {
                    if out[stats.shard].replace(stats).is_none() {
                        got += 1;
                    }
                }
                Ok(ArbiterMsg::WorkerPanicked { thread }) => {
                    self.mark_round_down(thread);
                    got += self.synthesize_thread(thread, &mut out);
                }
                Ok(ArbiterMsg::WorkerRecovered { thread }) => {
                    self.quarantined[thread] = false;
                }
                Ok(ArbiterMsg::ThreadDown { first_shard }) => {
                    self.dead.get_or_insert(first_shard);
                    let err = self.dead_error();
                    return Err(self.abort_round(id, err));
                }
                Ok(_) => continue, // stale traffic from an aborted round
                Err(RecvTimeoutError::Timeout) => {
                    return Err(self.abort_round(id, ViyojitError::RoundTimeout));
                }
                Err(RecvTimeoutError::Disconnected) => return Err(self.dead_error()),
            }
        }
        Ok(out
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect())
    }

    fn run_round(&mut self, id: u64, kind: RoundKind) -> Result<(), ViyojitError> {
        if self.dead.is_some() {
            let err = self.dead_error();
            return Err(self.abort_round(id, err));
        }
        // Threads quarantined at round start are down for the whole round
        // even if they recover mid-round: a rejoined worker participates
        // again from the next round on (stale grants are skipped by id).
        self.round_down.copy_from_slice(&self.quarantined);
        let before = self.collect_stats(id, false)?;
        match kind {
            RoundKind::Demand => {}
            // Pre-validated by the control handle, so this cannot panic.
            RoundKind::SetTotal(pages) => self.tree.set_total_budget(pages),
            RoundKind::Throttle { tenant, cap } => self.tree.throttle(TenantId(tenant), cap),
        }
        let before_stats: Vec<ViyojitStats> = before.iter().map(|s| s.stats).collect();
        let targets = self.tree.plan(&before_stats);

        // Shrink phase: grants where the target is below the pre-round
        // budget, applied (with stalls) before anyone grows. Down threads
        // never answer — and never need to: a panicked worker pins its
        // engines to the floor, so it has nothing to shrink and the
        // instantaneous budget sum stays under the battery regardless.
        self.send_grants(id, &before, &targets, true)?;
        let threads = self.grant_txs.len();
        let mut done = 0;
        while done < threads - self.round_down.iter().filter(|&&d| d).count() {
            match self.rx.recv_timeout(ROUND_TIMEOUT) {
                Ok(ArbiterMsg::ShrinkDone { round }) if round == id => done += 1,
                Ok(ArbiterMsg::WorkerPanicked { thread }) => self.mark_round_down(thread),
                Ok(ArbiterMsg::WorkerRecovered { thread }) => self.quarantined[thread] = false,
                Ok(ArbiterMsg::ThreadDown { first_shard }) => {
                    self.dead.get_or_insert(first_shard);
                    let err = self.dead_error();
                    return Err(self.abort_round(id, err));
                }
                Ok(_) => continue,
                Err(RecvTimeoutError::Timeout) => {
                    return Err(self.abort_round(id, ViyojitError::RoundTimeout));
                }
                Err(RecvTimeoutError::Disconnected) => return Err(self.dead_error()),
            }
        }

        // Grow phase; workers answer with their post-apply commit stats.
        self.send_grants(id, &before, &targets, false)?;
        let after = self.collect_stats(id, true)?;
        let after_stats: Vec<ViyojitStats> = after.iter().map(|s| s.stats).collect();
        self.tree.commit(&after_stats);
        self.publish_metrics(&after);
        for tx in &self.grant_txs {
            let _ = tx.send(GrantMsg::Done(id));
        }
        Ok(())
    }

    fn send_grants(
        &mut self,
        id: u64,
        before: &[ShardStats],
        targets: &[u64],
        shrink: bool,
    ) -> Result<(), ViyojitError> {
        for (t, tx) in self.grant_txs.iter().enumerate() {
            let grants: Vec<BudgetGrant> = (0..targets.len())
                .filter(|&s| self.thread_of_shard[s] == t)
                .filter(|&s| {
                    if shrink {
                        targets[s] < before[s].budget_pages
                    } else {
                        targets[s] > before[s].budget_pages
                    }
                })
                .map(|s| BudgetGrant {
                    shard: s,
                    budget_pages: targets[s],
                })
                .collect();
            let msg = if shrink {
                GrantMsg::Shrink(id, grants)
            } else {
                GrantMsg::Grow(id, grants)
            };
            if tx.send(msg).is_err() {
                self.dead.get_or_insert(t);
                let err = self.dead_error();
                return Err(self.abort_round(id, err));
            }
        }
        Ok(())
    }

    fn publish_metrics(&mut self, after: &[ShardStats]) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let rebalances = self.tree.rebalances();
        let tree = &self.tree;
        let tenant_names = &self.tenant_metric_names;
        self.telemetry.metrics(|m| {
            m.counter_set("sharded.rebalances", rebalances);
            for (s, (dirty_name, budget_name)) in after.iter().zip(&self.gauge_names) {
                m.gauge_set(dirty_name, s.dirty_pages as f64);
                m.gauge_set(budget_name, s.budget_pages as f64);
            }
            for (t, names) in tenant_names.iter().enumerate() {
                let mut budget = 0u64;
                let mut dirty = 0u64;
                let mut stall = 0u64;
                for s in &after[tree.tenant_shards(TenantId(t))] {
                    budget += s.budget_pages;
                    dirty += s.dirty_pages;
                    stall += s.stats.stall_time.as_nanos();
                }
                m.gauge_set(names.budget_pages, budget as f64);
                m.gauge_set(names.dirty_pages, dirty as f64);
                m.counter_set(names.stall_nanos, stall);
            }
        });
    }
}

// ----------------------------------------------------------------------
// Aggregation helpers (mirror the sequential frontend's sums exactly)
// ----------------------------------------------------------------------

fn accumulate_ssd(total: &mut SsdStats, s: &SsdStats) {
    total.writes += s.writes;
    total.reads += s.reads;
    total.bytes_written += s.bytes_written;
    total.bytes_read += s.bytes_read;
    total.write_errors += s.write_errors;
}

fn aggregate_failure(reports: impl IntoIterator<Item = PowerFailureReport>) -> PowerFailureReport {
    let mut total = PowerFailureReport {
        dirty_pages: 0,
        pages_flushed: 0,
        pages_lost: 0,
        retries: 0,
        bytes_flushed: 0,
        flush_time: SimDuration::ZERO,
        energy_margin_joules: f64::INFINITY,
        outcome: FlushOutcome::Complete,
    };
    for r in reports {
        total.dirty_pages += r.dirty_pages;
        total.pages_flushed += r.pages_flushed;
        total.pages_lost += r.pages_lost;
        total.retries += r.retries;
        total.bytes_flushed += r.bytes_flushed;
        total.flush_time = total.flush_time.max(r.flush_time);
        total.energy_margin_joules = total.energy_margin_joules.min(r.energy_margin_joules);
        total.outcome = total.outcome.max(r.outcome);
    }
    total
}

// ----------------------------------------------------------------------
// Spawning
// ----------------------------------------------------------------------

/// Spawns the worker and arbiter threads described by `b` and returns the
/// two plane handles. `b` was already validated.
pub(super) fn spawn_parallel<B: DirtyTracker + Send + 'static>(
    b: ShardedViyojitBuilder<B>,
) -> (ShardDataHandle, ShardControlHandle) {
    let shards = b.shards;
    let threads = b.threads.unwrap_or(shards).min(shards);
    let t0 = b.clock.now();
    let tree = b.tree();
    let initial = tree.initial_shares();
    let tenant_count = tree.tenant_count();
    let tenant_of_shard: Vec<usize> = (0..shards).map(|s| tree.tenant_of_shard(s).0).collect();
    let tenant_names: Vec<String> = (0..tenant_count)
        .map(|t| tree.tenant_name(TenantId(t)).to_string())
        .collect();
    let tenant_qos: Vec<TenantQos> = (0..tenant_count)
        .map(|t| tree.tenant_qos(TenantId(t)))
        .collect();
    let tenant_metric_names: Vec<TenantMetricNames> = (0..tenant_count)
        .map(TenantMetricNames::for_tenant)
        .collect();
    let tenant_fault_plans = if b.tenants.is_empty() {
        vec![None]
    } else {
        b.tenants
            .iter()
            .map(|t| t.faults.clone())
            .collect::<Vec<_>>()
    };

    let names: Vec<(&'static str, &'static str, &'static str)> = (0..shards)
        .map(|i| {
            (
                intern_metric_name(format!("sharded.shard{i}.dirty_pages")),
                intern_metric_name(format!("sharded.shard{i}.budget_pages")),
                intern_metric_name(format!("shard{i}")),
            )
        })
        .collect();

    let stride = b.pages_per_shard.div_ceil(64);
    let dirty_map = Arc::new(AtomicBitmap2L::new(shards * stride * 64));
    let error = Arc::new(Mutex::new(None));
    let thread_of_shard: Vec<usize> = (0..shards).map(|s| s % threads).collect();

    let (arb_tx, arb_rx) = channel();
    let mut shard_txs = Vec::with_capacity(threads);
    let mut grant_txs = Vec::with_capacity(threads);
    let mut joins = Vec::with_capacity(threads);

    for t in 0..threads {
        let owned: Vec<usize> = (t..shards).step_by(threads).collect();
        let clock = Clock::new();
        clock.advance_to(t0);
        let profiler = b.profiler.fork(clock.clone());
        // Each worker thread records into its own telemetry shard: the
        // write path locks a mutex no other thread ever touches, and the
        // parent handle merges shards on demand at snapshot time.
        let shard_telemetry = b.telemetry.fork_shard(clock.clone());
        let engines: Vec<(usize, Engine<B>)> = owned
            .iter()
            .map(|&s| {
                let mut cfg = b.config.clone();
                cfg.dirty_budget_pages = initial[s];
                let mut e = Engine::new(
                    b.pages_per_shard,
                    cfg,
                    clock.clone(),
                    b.costs.clone(),
                    b.ssd_config.clone(),
                );
                e.attach_telemetry(shard_telemetry.clone());
                e.attach_profiler(profiler.clone());
                if let Some(plan) = tenant_fault_plans[tenant_of_shard[s]]
                    .as_ref()
                    .or(b.faults.as_ref())
                {
                    e.attach_faults(plan.clone());
                }
                // Clones share the schedule's fire-at-most-once latch, so
                // one cluster-wide crash fires no matter which shard's
                // seam reaches the armed ordinal first.
                e.attach_crashes(b.crashes.clone());
                (s, e)
            })
            .collect();
        let frames: Vec<&'static str> = owned.iter().map(|&s| names[s].2).collect();

        let (tx, rx) = channel();
        let (gtx, grx) = channel();
        shard_txs.push(tx);
        grant_txs.push(gtx);
        let worker = Worker {
            shadow: vec![vec![0u64; stride]; engines.len()],
            scratch: vec![0u64; stride],
            engines,
            profiler,
            frames,
            rx,
            grant_rx: grx,
            arbiter_tx: arb_tx.clone(),
            clock,
            dirty_map: Arc::clone(&dirty_map),
            stride,
            error: Arc::clone(&error),
            thread: t,
            restart_budget: b.restart_budget,
            restarts: 0,
            min_per_shard: b.min_per_shard,
            telemetry: shard_telemetry,
            flight: b.flight.clone(),
            last_round: 0,
        };
        joins.push(
            std::thread::Builder::new()
                .name(format!("viyojit-worker{t}"))
                .spawn(move || worker.run())
                .expect("worker threads must spawn"),
        );
    }

    let arb = ArbiterThread {
        tree,
        rx: arb_rx,
        grant_txs,
        thread_of_shard: thread_of_shard.clone(),
        telemetry: b.telemetry.clone(),
        gauge_names: names.iter().map(|&(d, g, _)| (d, g)).collect(),
        tenant_metric_names: tenant_metric_names.clone(),
        dead: None,
        quarantined: vec![false; threads],
        round_down: vec![false; threads],
    };
    let arbiter_join = std::thread::Builder::new()
        .name("viyojit-arbiter".to_string())
        .spawn(move || arb.run())
        .expect("the arbiter thread must spawn");

    let runtime = Arc::new(Runtime {
        shard_txs,
        arbiter_tx: Some(arb_tx),
        rounds: Mutex::new(RoundState {
            next_round_id: 1,
            virtual_now: t0,
            next_rebalance_at: t0 + b.rebalance_period,
        }),
        error,
        dirty_map,
        thread_of_shard,
        total_budget: AtomicU64::new(b.config.dirty_budget_pages),
        min_per_shard: b.min_per_shard,
        shards,
        rebalance_period: b.rebalance_period,
        tenant_of_shard,
        tenant_names,
        tenant_qos,
        tenant_metric_names,
        tenant_throttled: Mutex::new(vec![None; tenant_count]),
        tenant_pages_lost: Mutex::new(vec![0; tenant_count]),
        joins: Mutex::new(joins),
        arbiter_join: Mutex::new(Some(arbiter_join)),
    });
    let staging = (0..threads).map(|_| Vec::new()).collect();
    let exporter = b
        .exporter
        .map(|config| telemetry::spawn_exporter(b.telemetry.clone(), config));
    (
        ShardDataHandle {
            runtime: Arc::clone(&runtime),
            routes: Vec::new(),
            staging,
            telemetry: b.telemetry.clone(),
        },
        ShardControlHandle {
            runtime,
            telemetry: b.telemetry,
            flight: b.flight,
            exporter,
        },
    )
}

// ----------------------------------------------------------------------
// The data-plane handle
// ----------------------------------------------------------------------

#[derive(Clone, Copy)]
struct RouteEntry {
    shard: usize,
    local: RegionId,
    len_bytes: u64,
}

/// The application-facing handle of a parallel sharded deployment:
/// [`NvHeap`] routing plus [`ShardDataPlane`] time-stepping.
///
/// Writes are bounds-checked against a local route mirror and staged in
/// per-worker batches; reads and mappings are synchronous request/reply
/// exchanges with the owning worker. Asynchronous write errors surface at
/// the next [`sync`](ShardDataPlane::sync) or
/// [`step`](ShardDataPlane::step).
pub struct ShardDataHandle {
    runtime: Arc<Runtime>,
    routes: Vec<Option<RouteEntry>>,
    staging: Vec<Vec<StagedWrite>>,
    /// Driver-side handle, used only for wall-clock step timing.
    telemetry: Telemetry,
}

impl std::fmt::Debug for ShardDataHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardDataHandle")
            .field("shards", &self.runtime.shards)
            .field("routes", &self.routes.iter().flatten().count())
            .finish_non_exhaustive()
    }
}

impl ShardDataHandle {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.runtime.shards
    }

    /// The shard a global region handle routes to, if mapped.
    pub fn shard_of(&self, region: RegionId) -> Option<usize> {
        self.routes
            .get(region.0 as usize)
            .and_then(|r| r.as_ref())
            .map(|e| e.shard)
    }

    /// Pages currently *published* as dirty in the shared cross-thread
    /// bitmap. Exact at `Tick`/`sync`/round boundaries; between them it
    /// lags each worker's private state by at most one publication.
    pub fn published_dirty_pages(&self) -> u64 {
        self.runtime.dirty_map.count()
    }

    /// The shared cross-thread dirty bitmap (shard `s` occupies the
    /// word-aligned stride `[s*W, (s+1)*W)` for `W = pages_per_shard
    /// words, rounded up`).
    pub fn dirty_bitmap(&self) -> &AtomicBitmap2L {
        &self.runtime.dirty_map
    }

    fn route(&self, region: RegionId) -> Result<RouteEntry, ViyojitError> {
        self.routes
            .get(region.0 as usize)
            .and_then(|r| *r)
            .ok_or(ViyojitError::BadRegion(region))
    }

    /// Same Fibonacci spread as the sequential frontend.
    fn preferred_shard(&self, slot: usize) -> usize {
        let hash = (slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (hash % self.runtime.shards as u64) as usize
    }

    fn flush_thread(&mut self, thread: usize) -> Result<(), ViyojitError> {
        if self.staging[thread].is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.staging[thread]);
        self.runtime
            .send_to_thread(thread, ShardCmd::WriteBatch(batch))
    }

    fn flush_all(&mut self) -> Result<(), ViyojitError> {
        for t in 0..self.staging.len() {
            self.flush_thread(t)?;
        }
        Ok(())
    }

    /// Round-trips a request to `thread`, mapping a dead worker to
    /// [`ViyojitError::ShardFailed`].
    fn exchange<T>(
        &mut self,
        thread: usize,
        make: impl FnOnce(Sender<T>) -> ShardCmd,
    ) -> Result<T, ViyojitError> {
        let (tx, rx) = channel();
        self.runtime.send_to_thread(thread, make(tx))?;
        rx.recv_timeout(ROUND_TIMEOUT).map_err(|e| match e {
            RecvTimeoutError::Timeout => ViyojitError::RoundTimeout,
            RecvTimeoutError::Disconnected => self.runtime.thread_failed(thread),
        })
    }
}

impl NvHeap for ShardDataHandle {
    /// Maps a region on the preferred (hashed) shard, probing the other
    /// shards in order when that shard's space is exhausted — identical
    /// placement to the sequential frontend.
    fn map(&mut self, len_bytes: u64) -> Result<RegionId, ViyojitError> {
        let slot = self
            .routes
            .iter()
            .position(|r| r.is_none())
            .unwrap_or(self.routes.len());
        let preferred = self.preferred_shard(slot);
        let n = self.runtime.shards;
        let mut last_err = None;
        for probe in 0..n {
            let shard = (preferred + probe) % n;
            let thread = self.runtime.thread_of_shard[shard];
            match self.exchange(thread, |reply| ShardCmd::Map {
                shard,
                len_bytes,
                reply,
            })? {
                Ok(local) => {
                    let route = Some(RouteEntry {
                        shard,
                        local,
                        len_bytes,
                    });
                    if slot == self.routes.len() {
                        self.routes.push(route);
                    } else {
                        self.routes[slot] = route;
                    }
                    return Ok(RegionId(slot as u32));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one shard was probed"))
    }

    fn unmap(&mut self, region: RegionId) -> Result<(), ViyojitError> {
        let entry = self.route(region)?;
        let thread = self.runtime.thread_of_shard[entry.shard];
        self.flush_thread(thread)?;
        self.exchange(thread, |reply| ShardCmd::Unmap {
            shard: entry.shard,
            local: entry.local,
            reply,
        })??;
        self.routes[region.0 as usize] = None;
        Ok(())
    }

    fn read(&mut self, region: RegionId, offset: u64, buf: &mut [u8]) -> Result<(), ViyojitError> {
        let entry = self.route(region)?;
        let thread = self.runtime.thread_of_shard[entry.shard];
        self.flush_thread(thread)?;
        let data = self.exchange(thread, |reply| ShardCmd::Read {
            shard: entry.shard,
            local: entry.local,
            offset,
            len: buf.len(),
            reply,
        })??;
        buf.copy_from_slice(&data);
        Ok(())
    }

    fn write(&mut self, region: RegionId, offset: u64, data: &[u8]) -> Result<(), ViyojitError> {
        let entry = self.route(region)?;
        // The same bounds rule as RegionTable::resolve, evaluated against
        // the route mirror so staging never defers a validation error;
        // the error names the shard-local region, as the sequential
        // frontend's does.
        if offset
            .checked_add(data.len() as u64)
            .is_none_or(|end| end > entry.len_bytes)
        {
            return Err(ViyojitError::OutOfRange {
                region: entry.local,
                offset,
                len: data.len(),
            });
        }
        let thread = self.runtime.thread_of_shard[entry.shard];
        self.staging[thread].push(StagedWrite {
            shard: entry.shard,
            local: entry.local,
            offset,
            data: data.to_vec(),
        });
        if self.staging[thread].len() >= WRITE_BATCH {
            self.flush_thread(thread)?;
        }
        Ok(())
    }

    fn region_len(&self, region: RegionId) -> Result<u64, ViyojitError> {
        Ok(self.route(region)?.len_bytes)
    }
}

impl ShardDataPlane for ShardDataHandle {
    /// Flushes staged writes, broadcasts the tick (each worker advances
    /// its own clock), and — when the driver timeline crosses a rebalance
    /// boundary — runs one message-passing round, then fast-forwards the
    /// boundary past "now" exactly as the sequential frontend does.
    fn step(&mut self, d: SimDuration) -> Result<(), ViyojitError> {
        let wall = self.telemetry.wall_start();
        self.flush_all()?;
        let runtime = Arc::clone(&self.runtime);
        let mut rs = runtime.lock_rounds();
        rs.virtual_now += d;
        for (t, tx) in runtime.shard_txs.iter().enumerate() {
            tx.send(ShardCmd::Tick(d))
                .map_err(|_| runtime.thread_failed(t))?;
        }
        if rs.virtual_now >= rs.next_rebalance_at {
            runtime.round_locked(&mut rs, RoundKind::Demand)?;
            while rs.next_rebalance_at <= rs.virtual_now {
                rs.next_rebalance_at += runtime.rebalance_period;
            }
        }
        drop(rs);
        self.telemetry.record_wall(WallKind::Step, wall);
        runtime.take_async_error()
    }

    /// Flushes staged writes, barriers on every worker (forcing a dirty
    /// publication), and surfaces any asynchronous write error.
    fn sync(&mut self) -> Result<(), ViyojitError> {
        self.flush_all()?;
        for t in 0..self.runtime.shard_txs.len() {
            self.exchange(t, |reply| ShardCmd::Sync { reply })?;
        }
        self.runtime.take_async_error()
    }
}

// ----------------------------------------------------------------------
// The control-plane handle
// ----------------------------------------------------------------------

/// The operator-facing handle of a parallel sharded deployment: budget
/// rounds, failure simulation, recovery, audits — every call a message
/// exchange with the worker and arbiter threads.
pub struct ShardControlHandle {
    runtime: Arc<Runtime>,
    telemetry: Telemetry,
    flight: Option<Arc<FlightRecorder>>,
    /// Keeps the background exporter alive for the deployment's lifetime;
    /// dropped (stopping the thread after a final render) with the handle.
    #[allow(dead_code)]
    exporter: Option<telemetry::ExporterHandle>,
}

impl std::fmt::Debug for ShardControlHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardControlHandle")
            .field("shards", &self.runtime.shards)
            .field(
                "total_budget",
                &self.runtime.total_budget.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl ShardControlHandle {
    /// Sends `query` to every worker and collects the replies in thread
    /// order.
    fn query_all(
        &mut self,
        mut make: impl FnMut() -> CtrlQuery,
    ) -> Result<Vec<CtrlReply>, ViyojitError> {
        let mut pending = Vec::with_capacity(self.runtime.shard_txs.len());
        for t in 0..self.runtime.shard_txs.len() {
            let (tx, rx) = channel();
            self.runtime.send_to_thread(
                t,
                ShardCmd::Query {
                    query: make(),
                    reply: tx,
                },
            )?;
            pending.push((t, rx));
        }
        pending
            .into_iter()
            .map(|(t, rx)| {
                rx.recv_timeout(ROUND_TIMEOUT).map_err(|e| match e {
                    RecvTimeoutError::Timeout => ViyojitError::RoundTimeout,
                    RecvTimeoutError::Disconnected => self.runtime.thread_failed(t),
                })
            })
            .collect()
    }

    /// One [`ShardStats`] per shard, ascending by shard index — the same
    /// per-shard view the arbiter collects at the start of a round.
    pub fn shard_stats(&mut self) -> Result<Vec<ShardStats>, ViyojitError> {
        let mut all = Vec::with_capacity(self.runtime.shards);
        for reply in self.query_all(|| CtrlQuery::Stats)? {
            if let CtrlReply::Stats(mut s) = reply {
                all.append(&mut s);
            }
        }
        all.sort_by_key(|s| s.shard);
        Ok(all)
    }

    fn run_failure(
        &mut self,
        mut make: impl FnMut() -> CtrlQuery,
    ) -> Result<PowerFailureReport, ViyojitError> {
        let shards = self.runtime.shards;
        let threads = self.runtime.shard_txs.len();
        let mut reports = Vec::with_capacity(shards);
        let mut lost = vec![0u64; self.runtime.tenant_names.len()];
        // Worker `t` owns shards `(t..shards).step_by(threads)` and
        // reports them in ascending order, so the global shard index of
        // each per-worker report is reconstructible without protocol
        // changes.
        for (t, reply) in self.query_all(&mut make)?.into_iter().enumerate() {
            if let CtrlReply::Failure(r) = reply {
                for (shard, report) in (t..shards).step_by(threads).zip(&r) {
                    lost[self.runtime.tenant_of_shard[shard]] += report.pages_lost;
                }
                reports.extend(r);
            }
        }
        let totals: Vec<u64> = {
            let mut mirror = self
                .runtime
                .tenant_pages_lost
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for (m, l) in mirror.iter_mut().zip(&lost) {
                *m += l;
            }
            mirror.clone()
        };
        self.telemetry.metrics(|m| {
            for (names, &v) in self.runtime.tenant_metric_names.iter().zip(&totals) {
                m.counter_set(names.pages_lost, v);
            }
        });
        Ok(aggregate_failure(reports))
    }

    /// SSD counters summed over every shard, or over one tenant's shards.
    fn ssd_stats_filtered(&mut self, tenant: Option<usize>) -> Result<SsdStats, ViyojitError> {
        let mut total = SsdStats::default();
        for reply in self.query_all(|| CtrlQuery::SsdStats)? {
            if let CtrlReply::Ssd(per_shard) = reply {
                for (shard, s) in per_shard {
                    if tenant.is_none_or(|t| self.runtime.tenant_of_shard[shard] == t) {
                        accumulate_ssd(&mut total, &s);
                    }
                }
            }
        }
        Ok(total)
    }

    /// Aggregated SSD counters across all shards.
    pub fn ssd_stats(&mut self) -> Result<SsdStats, ViyojitError> {
        self.ssd_stats_filtered(None)
    }
}

impl ShardControlPlane for ShardControlHandle {
    fn rebalance(&mut self) -> Result<(), ViyojitError> {
        let runtime = Arc::clone(&self.runtime);
        let mut rs = runtime.lock_rounds();
        runtime.round_locked(&mut rs, RoundKind::Demand)
    }

    fn set_total_budget(&mut self, pages: u64) -> Result<(), ViyojitError> {
        if self.runtime.min_per_shard * self.runtime.shards as u64 > pages {
            return Err(ViyojitError::InvalidConfig(
                "per-shard floors exceed the re-provisioned budget",
            ));
        }
        let runtime = Arc::clone(&self.runtime);
        let mut rs = runtime.lock_rounds();
        runtime.round_locked(&mut rs, RoundKind::SetTotal(pages))?;
        drop(rs);
        runtime.total_budget.store(pages, Ordering::Release);
        Ok(())
    }

    fn govern_degradation(
        &mut self,
        governor: &mut DegradationGovernor,
        reported_health: f64,
    ) -> Result<Option<u64>, ViyojitError> {
        let ssd = self.ssd_stats()?;
        let Some(budget) = governor.observe(reported_health, &ssd) else {
            return Ok(None);
        };
        let degraded = matches!(governor.mode(), DegradedMode::Degraded(_));
        self.telemetry.emit(|| TraceEvent::DegradedModeChanged {
            degraded,
            budget_pages: budget,
        });
        if degraded {
            if let Some(flight) = &self.flight {
                let last_round = self.runtime.lock_rounds().next_round_id.saturating_sub(1);
                let _ = flight.dump("control", "degraded_mode", last_round, &self.telemetry);
            }
        }
        self.set_total_budget(budget)?;
        Ok(Some(budget))
    }

    fn power_failure(&mut self) -> Result<PowerFailureReport, ViyojitError> {
        self.run_failure(|| CtrlQuery::PowerFailure)
    }

    fn power_failure_powered(
        &mut self,
        battery: &Battery,
        power: &PowerModel,
    ) -> Result<PowerFailureReport, ViyojitError> {
        self.run_failure(|| {
            CtrlQuery::PowerFailurePowered(Box::new((battery.clone(), power.clone())))
        })
    }

    fn recover(&mut self) -> Result<(), ViyojitError> {
        self.query_all(|| CtrlQuery::Recover)?;
        let mut rs = self.runtime.lock_rounds();
        rs.next_rebalance_at = rs.virtual_now + self.runtime.rebalance_period;
        Ok(())
    }

    fn stats(&mut self) -> Result<ViyojitStats, ViyojitError> {
        let mut total = ViyojitStats::default();
        for s in self.shard_stats()? {
            total.accumulate(&s.stats);
        }
        Ok(total)
    }

    fn dirty_count(&mut self) -> Result<u64, ViyojitError> {
        Ok(self.shard_stats()?.iter().map(|s| s.dirty_pages).sum())
    }

    fn total_budget_pages(&self) -> u64 {
        self.runtime.total_budget.load(Ordering::Acquire)
    }

    fn rebalances(&mut self) -> Result<u64, ViyojitError> {
        let runtime = Arc::clone(&self.runtime);
        let _rs = runtime.lock_rounds();
        let (tx, rx) = channel();
        runtime.arbiter_send(ArbiterMsg::Rebalances { reply: tx })?;
        rx.recv_timeout(ROUND_TIMEOUT).map_err(|e| match e {
            RecvTimeoutError::Timeout => ViyojitError::RoundTimeout,
            RecvTimeoutError::Disconnected => ViyojitError::ShardFailed { shard: 0 },
        })
    }

    fn check_invariants(&mut self) -> Result<(), ViyojitError> {
        let mut assigned = 0;
        let mut dirty = 0;
        let mut first = None;
        for reply in self.query_all(|| CtrlQuery::Invariants)? {
            if let CtrlReply::Invariants {
                assigned: a,
                dirty: d,
                violation,
            } = reply
            {
                assigned += a;
                dirty += d;
                if first.is_none() {
                    first = violation;
                }
            }
        }
        let total = self.total_budget_pages();
        if assigned > total {
            return Err(InvariantViolation::OverCommit {
                assigned,
                provisioned: total,
            }
            .into());
        }
        if dirty > total {
            return Err(InvariantViolation::BudgetExceeded {
                dirty,
                budget: total,
            }
            .into());
        }
        match first {
            Some(v) => Err(v.into()),
            None => Ok(()),
        }
    }

    fn tenant_stats(&mut self) -> Result<Vec<TenantStats>, ViyojitError> {
        let per_shard = self.shard_stats()?;
        let throttled = self
            .runtime
            .tenant_throttled
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let lost = self
            .runtime
            .tenant_pages_lost
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut out: Vec<TenantStats> = self
            .runtime
            .tenant_names
            .iter()
            .enumerate()
            .map(|(t, name)| TenantStats {
                tenant: TenantId(t),
                name: name.clone(),
                budget_pages: 0,
                dirty_pages: 0,
                stats: ViyojitStats::default(),
                pages_lost: lost[t],
                throttled: throttled[t].is_some(),
            })
            .collect();
        for s in &per_shard {
            let t = self.runtime.tenant_of_shard[s.shard];
            out[t].budget_pages += s.budget_pages;
            out[t].dirty_pages += s.dirty_pages;
            out[t].stats.accumulate(&s.stats);
        }
        Ok(out)
    }

    fn throttle_tenant(&mut self, tenant: TenantId, cap: Option<u64>) -> Result<(), ViyojitError> {
        if tenant.0 >= self.runtime.tenant_names.len() {
            return Err(ViyojitError::InvalidConfig("tenant id out of range"));
        }
        // The same clamp the tree applies: a cap can never squeeze a
        // tenant below its shards' floors.
        let shards_t = self
            .runtime
            .tenant_of_shard
            .iter()
            .filter(|&&t| t == tenant.0)
            .count() as u64;
        let clamped = cap.map(|c| c.max(self.runtime.min_per_shard * shards_t));
        let runtime = Arc::clone(&self.runtime);
        {
            let mut rs = runtime.lock_rounds();
            runtime.round_locked(
                &mut rs,
                RoundKind::Throttle {
                    tenant: tenant.0,
                    cap: clamped,
                },
            )?;
        }
        runtime
            .tenant_throttled
            .lock()
            .unwrap_or_else(PoisonError::into_inner)[tenant.0] = clamped;
        let cap_pages = clamped.unwrap_or_else(|| self.runtime.tenant_qos[tenant.0].capacity());
        self.telemetry.emit(|| TraceEvent::TenantThrottled {
            tenant: tenant.0 as u64,
            throttled: clamped.is_some(),
            cap_pages,
        });
        Ok(())
    }

    fn govern_tenant_degradation(
        &mut self,
        tenant: TenantId,
        governor: &mut DegradationGovernor,
        reported_health: f64,
    ) -> Result<Option<u64>, ViyojitError> {
        if tenant.0 >= self.runtime.tenant_names.len() {
            return Err(ViyojitError::InvalidConfig("tenant id out of range"));
        }
        let ssd = self.ssd_stats_filtered(Some(tenant.0))?;
        let Some(budget) = governor.observe(reported_health, &ssd) else {
            return Ok(None);
        };
        let throttled = matches!(governor.mode(), DegradedMode::Degraded(_));
        self.throttle_tenant(tenant, throttled.then_some(budget))?;
        Ok(Some(budget))
    }
}
