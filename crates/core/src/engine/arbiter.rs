//! The budget arbiter: dividing one battery's dirty budget among several
//! engines (§6.3's ballooning discussion, generalised).
//!
//! [`BudgetArbiter`] is the pure redistribution policy shared by the
//! tenant-level [`BalloonedCluster`](crate::BalloonedCluster) and the
//! shard-level [`ShardedViyojit`](super::ShardedViyojit): it observes each
//! member's demand (write stalls and dirty-page churn since the last
//! rebalance), divides the distributable pages proportionally with a
//! per-member floor, and leaves the *application* of the new budgets (and
//! the shrink-before-grow ordering that keeps the instantaneous sum under
//! the battery) to the caller.

use sim_clock::SimDuration;

use crate::{InvariantViolation, ViyojitStats};

/// Largest-remainder division of `distributable` pages in proportion to
/// `demands`: floor shares first, then the remainder awarded one page at a
/// time cycling over members from highest demand down (stable order for
/// ties). Conserves the total exactly.
///
/// This is *the* division every level of the budget hierarchy uses — the
/// flat [`BudgetArbiter`], the tenant level of
/// [`BudgetTree`](super::BudgetTree), and the weighted-reclaim path — so
/// a hierarchy that degenerates to one member reproduces the flat plan
/// byte for byte.
///
/// # Panics
///
/// Panics if `demands` is empty or sums to zero while `distributable` is
/// nonzero (callers guarantee every demand is at least 1).
pub(super) fn divide_proportionally(distributable: u64, demands: &[u64]) -> Vec<u64> {
    let n = demands.len();
    let total_demand: u64 = demands.iter().sum();
    let mut shares: Vec<u64> = demands
        .iter()
        .map(|&d| distributable * d / total_demand)
        .collect();
    let mut leftover = distributable - shares.iter().sum::<u64>();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(demands[i]));
    for &i in order.iter().cycle().take(leftover as usize) {
        shares[i] += 1;
        leftover -= 1;
        if leftover == 0 {
            break;
        }
    }
    shares
}

/// [`divide_proportionally`] with a per-member ceiling: members whose
/// proportional share overflows their cap are pinned to it and the excess
/// is re-divided among the uncapped members, iterating until no cap binds.
/// When every member is capped, the residue stays unallocated (the caller
/// keeps it — budgets may undershoot the total, never overshoot).
///
/// When no cap binds this is exactly one pass of [`divide_proportionally`],
/// preserving the flat arbiter's byte-identical division.
pub(super) fn divide_with_caps(distributable: u64, demands: &[u64], caps: &[u64]) -> Vec<u64> {
    debug_assert_eq!(demands.len(), caps.len());
    let n = demands.len();
    let mut out = vec![0u64; n];
    let mut active: Vec<usize> = (0..n).collect();
    let mut remaining = distributable;
    while remaining > 0 && !active.is_empty() {
        let local: Vec<u64> = active.iter().map(|&i| demands[i]).collect();
        let shares = divide_proportionally(remaining, &local);
        let mut next_active = Vec::with_capacity(active.len());
        let mut any_capped = false;
        for (&i, &share) in active.iter().zip(&shares) {
            let room = caps[i] - out[i];
            if share >= room {
                out[i] = caps[i];
                remaining -= room;
                any_capped = true;
            } else {
                next_active.push(i);
            }
        }
        if !any_capped {
            for (&i, &share) in active.iter().zip(&shares) {
                out[i] += share;
            }
            break;
        }
        active = next_active;
    }
    out
}

/// Demand observed for one member since the previous rebalance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DemandSnapshot {
    budget_stalls: u64,
    pages_dirtied: u64,
    stall_time: SimDuration,
}

impl DemandSnapshot {
    fn of(stats: &ViyojitStats) -> Self {
        DemandSnapshot {
            budget_stalls: stats.budget_stalls,
            pages_dirtied: stats.pages_dirtied,
            stall_time: stats.stall_time,
        }
    }
}

/// Divides a shared dirty budget across N members in proportion to
/// observed demand, with a per-member floor.
///
/// The arbiter is deliberately stateless about the members themselves —
/// it sees only their [`ViyojitStats`] — so one policy serves tenants
/// (whole engines owned by different workloads) and shards (slices of one
/// workload's address space) alike.
///
/// A rebalance is a `plan` / apply / `commit` cycle:
///
/// 1. [`BudgetArbiter::plan`] computes target budgets from current stats;
/// 2. the caller applies them shrink-first, then grow (so the assigned
///    sum never exceeds the provisioned total at any instant — shrinking
///    members may stall flushing down, which is the point);
/// 3. [`BudgetArbiter::commit`] records the post-apply stats as the new
///    demand baseline (stalls incurred *while shrinking* count toward the
///    member's demand at the next rebalance, not this one).
#[derive(Debug)]
pub struct BudgetArbiter {
    total_budget_pages: u64,
    min_per_member: u64,
    last_seen: Vec<DemandSnapshot>,
    rebalances: u64,
}

impl BudgetArbiter {
    /// Creates an arbiter dividing `total_budget_pages` across `members`
    /// members, each guaranteed at least `min_per_member`.
    ///
    /// # Panics
    ///
    /// Panics if there are no members, the floor is zero, or the floors
    /// alone exceed the total.
    pub fn new(members: usize, total_budget_pages: u64, min_per_member: u64) -> Self {
        assert!(members > 0, "an arbiter needs at least one member");
        assert!(min_per_member > 0, "members need at least one dirty page");
        assert!(
            min_per_member * members as u64 <= total_budget_pages,
            "per-member floors exceed the provisioned budget"
        );
        BudgetArbiter {
            total_budget_pages,
            min_per_member,
            last_seen: vec![DemandSnapshot::default(); members],
            rebalances: 0,
        }
    }

    /// Number of members.
    pub fn members(&self) -> usize {
        self.last_seen.len()
    }

    /// The shared provisioned budget.
    pub fn total_budget_pages(&self) -> u64 {
        self.total_budget_pages
    }

    /// The per-member floor.
    pub fn min_per_member(&self) -> u64 {
        self.min_per_member
    }

    /// Rebalances committed so far.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Re-provisions the shared total at runtime (a §8 battery
    /// re-derivation or a degradation transition). The caller must follow
    /// with a plan/apply/commit cycle to bring assignments under the new
    /// total.
    ///
    /// # Panics
    ///
    /// Panics if the per-member floors no longer fit `pages`.
    pub fn set_total_budget(&mut self, pages: u64) {
        assert!(
            self.min_per_member * self.members() as u64 <= pages,
            "per-member floors exceed the re-provisioned budget"
        );
        self.total_budget_pages = pages;
    }

    /// The even initial division: `total / members`, raised to the floor.
    /// (The even shares may sum above the total when the floor dominates;
    /// construction asserts the floors themselves fit.)
    pub fn initial_share(&self) -> u64 {
        (self.total_budget_pages / self.members() as u64).max(self.min_per_member)
    }

    /// Demand score for one member: stalls hurt most (a writer blocked on
    /// the SSD), dirty-page churn indicates an active write working set.
    fn demand(&self, idx: usize, stats: &ViyojitStats) -> u64 {
        let prev = self.last_seen[idx];
        // Saturating: a quarantined shard's synthesized report (all zeros)
        // can sit below the committed baseline; that is zero new demand,
        // not an underflow.
        let stalls = stats.budget_stalls.saturating_sub(prev.budget_stalls);
        let dirtied = stats.pages_dirtied.saturating_sub(prev.pages_dirtied);
        10 * stalls + dirtied + 1 // +1 keeps idle members from starving the score
    }

    /// Demand scores for every member against the current baseline, in
    /// member order. The [`BudgetTree`](super::BudgetTree) sums these per
    /// tenant so the tenant level weighs exactly the signal the shard
    /// level divides by.
    ///
    /// # Panics
    ///
    /// Panics if `stats` does not have one entry per member.
    pub(super) fn demands(&self, stats: &[ViyojitStats]) -> Vec<u64> {
        assert_eq!(stats.len(), self.members(), "one stats snapshot per member");
        stats
            .iter()
            .enumerate()
            .map(|(i, s)| self.demand(i, s))
            .collect()
    }

    /// Computes target budgets proportional to demand: a largest-remainder
    /// division of the pages above the floors, remainders awarded to the
    /// highest-demand members first.
    ///
    /// # Panics
    ///
    /// Panics if `stats` does not have one entry per member.
    pub fn plan(&self, stats: &[ViyojitStats]) -> Vec<u64> {
        self.plan_with_total(self.total_budget_pages, stats)
    }

    /// [`BudgetArbiter::plan`] against an externally supplied total — the
    /// hierarchy plans each tenant's shard division under the allocation
    /// the tenant level just granted, without mutating the provisioned
    /// total.
    ///
    /// # Panics
    ///
    /// Panics if `stats` does not have one entry per member or the floors
    /// do not fit `total`.
    pub fn plan_with_total(&self, total: u64, stats: &[ViyojitStats]) -> Vec<u64> {
        let n = self.members();
        let demands = self.demands(stats);
        assert!(
            self.min_per_member * n as u64 <= total,
            "per-member floors exceed the planned total"
        );
        let distributable = total - self.min_per_member * n as u64;
        let shares = divide_proportionally(distributable, &demands);
        shares.iter().map(|s| s + self.min_per_member).collect()
    }

    /// Records the post-apply stats as the new demand baseline and counts
    /// the rebalance.
    ///
    /// # Panics
    ///
    /// Panics if `stats` does not have one entry per member.
    pub fn commit(&mut self, stats: &[ViyojitStats]) {
        assert_eq!(stats.len(), self.members(), "one stats snapshot per member");
        for (seen, s) in self.last_seen.iter_mut().zip(stats) {
            *seen = DemandSnapshot::of(s);
        }
        self.rebalances += 1;
    }

    /// Checks that `assigned` budgets fit the provisioned total.
    ///
    /// # Errors
    ///
    /// [`InvariantViolation::OverCommit`] when they do not.
    pub fn check_assignment(&self, assigned: u64) -> Result<(), InvariantViolation> {
        if assigned > self.total_budget_pages {
            return Err(InvariantViolation::OverCommit {
                assigned,
                provisioned: self.total_budget_pages,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(stalls: u64, dirtied: u64) -> ViyojitStats {
        ViyojitStats {
            budget_stalls: stalls,
            pages_dirtied: dirtied,
            ..ViyojitStats::default()
        }
    }

    #[test]
    fn plan_conserves_the_total() {
        let arb = BudgetArbiter::new(3, 100, 5);
        let targets = arb.plan(&[stats(0, 7), stats(3, 50), stats(0, 0)]);
        assert_eq!(targets.iter().sum::<u64>(), 100);
        assert!(targets.iter().all(|&t| t >= 5));
    }

    #[test]
    fn demand_is_proportional_and_deltas_reset_on_commit() {
        let mut arb = BudgetArbiter::new(2, 64, 4);
        let busy = [stats(10, 200), stats(0, 0)];
        let t1 = arb.plan(&busy);
        assert!(t1[0] > t1[1], "the stalling member gets the larger share");
        arb.commit(&busy);
        // Demand is measured since the last commit: with no new activity
        // the members are equally (un)deserving.
        let t2 = arb.plan(&busy);
        assert_eq!(t2[0], t2[1]);
        assert_eq!(arb.rebalances(), 1);
    }

    #[test]
    fn remainders_go_to_the_highest_demand_members() {
        let arb = BudgetArbiter::new(3, 10, 1);
        // distributable = 7, demands 2:2:3 -> floor shares 2,2,3 sum 7, no
        // leftover; make demands uneven enough to force remainders.
        let targets = arb.plan(&[stats(0, 1), stats(0, 1), stats(0, 2)]);
        assert_eq!(targets.iter().sum::<u64>(), 10);
        assert!(targets[2] >= targets[0]);
    }

    #[test]
    #[should_panic(expected = "floors exceed")]
    fn overcommitted_floors_panic() {
        BudgetArbiter::new(4, 10, 3);
    }

    #[test]
    fn overcommit_check_reports_the_violation() {
        let arb = BudgetArbiter::new(2, 10, 1);
        assert!(arb.check_assignment(10).is_ok());
        assert_eq!(
            arb.check_assignment(11),
            Err(InvariantViolation::OverCommit {
                assigned: 11,
                provisioned: 10,
            })
        );
    }

    #[test]
    fn single_member_always_receives_the_whole_total() {
        let mut arb = BudgetArbiter::new(1, 37, 1);
        // Idle, busy, or stalling: one member is the only destination.
        assert_eq!(arb.plan(&[stats(0, 0)]), vec![37]);
        assert_eq!(arb.plan(&[stats(9, 400)]), vec![37]);
        arb.commit(&[stats(9, 400)]);
        assert_eq!(arb.plan(&[stats(9, 400)]), vec![37]);
        assert_eq!(arb.initial_share(), 37);
    }

    #[test]
    #[should_panic(expected = "floors exceed")]
    fn total_below_members_times_min_panics_at_construction() {
        // total < members x min: 3 members x 5 floor = 15 > 14.
        BudgetArbiter::new(3, 14, 5);
    }

    #[test]
    #[should_panic(expected = "floors exceed")]
    fn zero_total_budget_is_rejected() {
        // A zero total cannot cover even one member's floor.
        BudgetArbiter::new(1, 0, 1);
    }

    #[test]
    fn shrink_below_assigned_mid_run_replans_under_the_new_total() {
        let mut arb = BudgetArbiter::new(2, 64, 4);
        let busy = [stats(5, 100), stats(0, 0)];
        let t1 = arb.plan(&busy);
        assert_eq!(t1.iter().sum::<u64>(), 64);
        arb.commit(&busy);
        // The operator shrinks the total below what is currently assigned;
        // the next plan must fit the new total and the old assignment must
        // now register as an overcommit until the caller applies it.
        arb.set_total_budget(16);
        assert_eq!(
            arb.check_assignment(t1.iter().sum()),
            Err(InvariantViolation::OverCommit {
                assigned: 64,
                provisioned: 16,
            })
        );
        let t2 = arb.plan(&busy);
        assert_eq!(t2.iter().sum::<u64>(), 16);
        assert!(t2.iter().all(|&t| t >= 4));
        assert!(arb.check_assignment(t2.iter().sum()).is_ok());
    }

    #[test]
    #[should_panic(expected = "floors exceed")]
    fn floor_rejection_leaves_no_partial_reprovisioning() {
        let mut arb = BudgetArbiter::new(4, 64, 4);
        // 4 members x 4 floor = 16 > 15: the re-provisioning must panic
        // (callers route this through a validating error path) without
        // having touched the total.
        arb.set_total_budget(15);
    }

    #[test]
    fn floor_rejection_accounting_keeps_the_previous_total() {
        let mut arb = BudgetArbiter::new(4, 64, 4);
        let reject =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| arb.set_total_budget(15)));
        assert!(reject.is_err(), "15 pages cannot cover 4 floors of 4");
        assert_eq!(
            arb.total_budget_pages(),
            64,
            "a rejected re-provisioning must not change the total"
        );
        assert_eq!(arb.rebalances(), 0, "rejection is not a rebalance");
        // The arbiter still plans consistently under the old total.
        let t = arb.plan(&[ViyojitStats::default(); 4]);
        assert_eq!(t.iter().sum::<u64>(), 64);
    }

    #[test]
    fn capped_division_matches_uncapped_when_no_cap_binds() {
        let demands = [3u64, 7, 1, 9];
        assert_eq!(
            divide_with_caps(100, &demands, &[u64::MAX; 4]),
            divide_proportionally(100, &demands)
        );
    }

    #[test]
    fn capped_division_pins_overflow_and_redistributes() {
        // Member 1 demands most but is capped at 5; its excess flows to
        // the others. Totals conserve exactly while caps hold.
        let out = divide_with_caps(30, &[1, 100, 1], &[u64::MAX, 5, u64::MAX]);
        assert_eq!(out[1], 5);
        assert_eq!(out.iter().sum::<u64>(), 30);
        // Everyone capped: the residue stays unallocated, never oversubscribed.
        let tight = divide_with_caps(30, &[1, 1], &[4, 4]);
        assert_eq!(tight, vec![4, 4]);
    }
}
