//! Hysteresis-based degraded-mode budget governor.
//!
//! §8 of the paper re-derives the dirty budget when battery health changes;
//! this module generalises that into a governor that watches two health
//! signals — the battery gauge's reported health and the SSD's windowed
//! write-error rate — and shrinks the dirty budget to a degraded fraction
//! when either crosses its entry threshold. Hysteresis (separate, stricter
//! exit thresholds) prevents the budget from flapping when a signal hovers
//! near a threshold.
//!
//! The governor is pure policy: it owns no engine state and returns the
//! budget the engine *should* run with; callers apply it through the
//! existing [`set_dirty_budget`](crate::Engine::set_dirty_budget) /
//! `BudgetArbiter` paths, which already stall writers until the dirty
//! population fits the shrunk budget.

use ssd_sim::SsdStats;

/// Which degraded-entry signal tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// Reported battery health fell below the entry threshold.
    BatteryHealth,
    /// The windowed SSD write-error rate rose above the entry threshold.
    SsdErrors,
    /// Both signals tripped in the same observation.
    Both,
}

/// The governor's typed status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// Full nominal budget in force.
    Nominal,
    /// Degraded budget in force, with the signal that caused entry.
    Degraded(DegradeReason),
}

/// Thresholds and budget policy for [`DegradationGovernor`].
///
/// Entry thresholds trip degradation; exit thresholds (strictly safer than
/// entry) must be re-crossed before the governor restores the nominal
/// budget — the hysteresis band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationConfig {
    /// Enter degraded mode when reported battery health drops below this.
    pub health_enter: f64,
    /// Leave (the battery leg of) degraded mode only when reported health
    /// recovers above this. Must be `>= health_enter`.
    pub health_exit: f64,
    /// Enter degraded mode when the windowed write-error rate (errors per
    /// attempted write since the last observation) exceeds this.
    pub error_rate_enter: f64,
    /// Leave (the SSD leg of) degraded mode only when the windowed rate
    /// falls below this. Must be `<= error_rate_enter`.
    pub error_rate_exit: f64,
    /// Fraction of the nominal budget to run with while degraded.
    pub degraded_fraction: f64,
    /// Floor on the degraded budget (a budget of zero would deadlock every
    /// writer).
    pub min_budget_pages: u64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            health_enter: 0.55,
            health_exit: 0.7,
            error_rate_enter: 0.05,
            error_rate_exit: 0.01,
            degraded_fraction: 0.5,
            min_budget_pages: 1,
        }
    }
}

impl DegradationConfig {
    /// Panics unless thresholds are ordered for hysteresis and fractions
    /// are sane.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.health_enter)
                && (0.0..=1.0).contains(&self.health_exit)
                && self.health_exit >= self.health_enter,
            "health hysteresis requires 0 <= enter <= exit <= 1, got enter={} exit={}",
            self.health_enter,
            self.health_exit
        );
        assert!(
            self.error_rate_enter >= 0.0
                && self.error_rate_exit >= 0.0
                && self.error_rate_exit <= self.error_rate_enter,
            "error-rate hysteresis requires 0 <= exit <= enter, got enter={} exit={}",
            self.error_rate_enter,
            self.error_rate_exit
        );
        assert!(
            self.degraded_fraction > 0.0 && self.degraded_fraction <= 1.0,
            "degraded fraction must be in (0,1], got {}",
            self.degraded_fraction
        );
        assert!(
            self.min_budget_pages > 0,
            "degraded budget floor must allow at least one dirty page"
        );
    }
}

/// Watches battery health and SSD error rate and decides the dirty budget.
///
/// Call [`observe`](DegradationGovernor::observe) whenever fresh signals
/// are available (epoch boundaries, battery telemetry ticks). It returns
/// `Some(budget)` only on a mode *transition* — callers apply that budget
/// and otherwise leave the engine alone.
///
/// # Examples
///
/// ```
/// use ssd_sim::SsdStats;
/// use viyojit::{DegradationConfig, DegradationGovernor, DegradedMode};
///
/// let mut gov = DegradationGovernor::new(1024, DegradationConfig::default());
/// // Healthy battery, clean SSD: stays nominal, no budget change.
/// assert_eq!(gov.observe(1.0, &SsdStats::default()), None);
/// // Battery loses half its cells: degrade to half the budget.
/// assert_eq!(gov.observe(0.5, &SsdStats::default()), Some(512));
/// assert!(matches!(gov.mode(), DegradedMode::Degraded(_)));
/// // Hysteresis: recovering to 0.6 is above enter (0.55) but below
/// // exit (0.7), so the governor holds the degraded budget.
/// assert_eq!(gov.observe(0.6, &SsdStats::default()), None);
/// // Full recovery restores the nominal budget.
/// assert_eq!(gov.observe(0.9, &SsdStats::default()), Some(1024));
/// assert_eq!(gov.mode(), DegradedMode::Nominal);
/// ```
#[derive(Debug, Clone)]
pub struct DegradationGovernor {
    config: DegradationConfig,
    nominal_budget: u64,
    mode: DegradedMode,
    /// `(writes + write_errors, write_errors)` at the last observation, so
    /// each observation judges only the traffic since the previous one.
    last_seen: (u64, u64),
    transitions: u64,
}

impl DegradationGovernor {
    /// A governor holding `nominal_budget` pages while healthy.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_budget` is zero or `config` is invalid.
    pub fn new(nominal_budget: u64, config: DegradationConfig) -> Self {
        assert!(nominal_budget > 0, "nominal budget must be positive");
        config.validate();
        DegradationGovernor {
            config,
            nominal_budget,
            mode: DegradedMode::Nominal,
            last_seen: (0, 0),
            transitions: 0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> DegradedMode {
        self.mode
    }

    /// The budget the governor currently prescribes.
    pub fn current_budget(&self) -> u64 {
        match self.mode {
            DegradedMode::Nominal => self.nominal_budget,
            DegradedMode::Degraded(_) => self.degraded_budget(),
        }
    }

    /// Mode transitions so far (enter + exit).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Updates the nominal budget (e.g. after a §8 battery re-derivation)
    /// without disturbing the mode. Returns the budget now prescribed.
    pub fn set_nominal_budget(&mut self, pages: u64) -> u64 {
        assert!(pages > 0, "nominal budget must be positive");
        self.nominal_budget = pages;
        self.current_budget()
    }

    fn degraded_budget(&self) -> u64 {
        let shrunk = (self.nominal_budget as f64 * self.config.degraded_fraction) as u64;
        shrunk.max(self.config.min_budget_pages)
    }

    /// Feeds fresh signals and returns `Some(new budget)` iff the mode
    /// changed. `reported_health` is what the battery gauge claims (which
    /// under fault injection may differ from the truth — the governor can
    /// only act on what it can see); `ssd` is the cumulative counter
    /// snapshot, windowed internally.
    pub fn observe(&mut self, reported_health: f64, ssd: &SsdStats) -> Option<u64> {
        let attempts = ssd.writes + ssd.write_errors;
        let (seen_attempts, seen_errors) = self.last_seen;
        let window_attempts = attempts.saturating_sub(seen_attempts);
        let window_errors = ssd.write_errors.saturating_sub(seen_errors);
        self.last_seen = (attempts, ssd.write_errors);
        let error_rate = if window_attempts == 0 {
            0.0
        } else {
            window_errors as f64 / window_attempts as f64
        };

        let next = match self.mode {
            DegradedMode::Nominal => {
                let battery_bad = reported_health < self.config.health_enter;
                let ssd_bad = error_rate > self.config.error_rate_enter;
                match (battery_bad, ssd_bad) {
                    (true, true) => DegradedMode::Degraded(DegradeReason::Both),
                    (true, false) => DegradedMode::Degraded(DegradeReason::BatteryHealth),
                    (false, true) => DegradedMode::Degraded(DegradeReason::SsdErrors),
                    (false, false) => DegradedMode::Nominal,
                }
            }
            DegradedMode::Degraded(_) => {
                // Exit requires *both* signals safely inside the exit band.
                let battery_ok = reported_health >= self.config.health_exit;
                let ssd_ok = error_rate <= self.config.error_rate_exit;
                if battery_ok && ssd_ok {
                    DegradedMode::Nominal
                } else {
                    self.mode // hold, whatever originally tripped it
                }
            }
        };
        if next == self.mode {
            return None;
        }
        self.mode = next;
        self.transitions += 1;
        Some(self.current_budget())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(writes: u64, errors: u64) -> SsdStats {
        SsdStats {
            writes,
            write_errors: errors,
            ..SsdStats::default()
        }
    }

    #[test]
    fn healthy_signals_never_transition() {
        let mut gov = DegradationGovernor::new(100, DegradationConfig::default());
        for i in 0..10 {
            assert_eq!(gov.observe(1.0, &stats(i * 50, 0)), None);
        }
        assert_eq!(gov.mode(), DegradedMode::Nominal);
        assert_eq!(gov.transitions(), 0);
    }

    #[test]
    fn error_spike_degrades_and_recovery_needs_clean_window() {
        let mut gov = DegradationGovernor::new(100, DegradationConfig::default());
        // 10 errors in 100 attempts = 10% > 5% enter threshold.
        assert_eq!(
            gov.observe(1.0, &stats(90, 10)),
            Some(50),
            "spike should halve the budget"
        );
        assert_eq!(gov.mode(), DegradedMode::Degraded(DegradeReason::SsdErrors));
        // Next window: 3 more errors in 100 attempts = 3% — above the 1%
        // exit threshold, so hysteresis holds the degraded budget.
        assert_eq!(gov.observe(1.0, &stats(187, 13)), None);
        // A clean window recovers.
        assert_eq!(gov.observe(1.0, &stats(287, 13)), Some(100));
        assert_eq!(gov.mode(), DegradedMode::Nominal);
        assert_eq!(gov.transitions(), 2);
    }

    #[test]
    fn both_signals_reported_as_both() {
        let mut gov = DegradationGovernor::new(100, DegradationConfig::default());
        assert!(gov.observe(0.1, &stats(50, 50)).is_some());
        assert_eq!(gov.mode(), DegradedMode::Degraded(DegradeReason::Both));
    }

    #[test]
    fn exit_requires_every_signal_healthy() {
        let mut gov = DegradationGovernor::new(100, DegradationConfig::default());
        assert!(gov.observe(0.2, &stats(100, 20)).is_some());
        // Battery recovers fully but the SSD is still erroring: hold.
        assert_eq!(gov.observe(1.0, &stats(180, 40)), None);
        // Both healthy: exit.
        assert_eq!(gov.observe(1.0, &stats(280, 40)), Some(100));
    }

    #[test]
    fn degraded_budget_never_below_floor() {
        let config = DegradationConfig {
            degraded_fraction: 0.5,
            min_budget_pages: 4,
            ..DegradationConfig::default()
        };
        let mut gov = DegradationGovernor::new(5, config);
        assert_eq!(gov.observe(0.0, &stats(0, 0)), Some(4));
    }

    #[test]
    fn nominal_budget_update_respects_mode() {
        let mut gov = DegradationGovernor::new(100, DegradationConfig::default());
        assert_eq!(gov.set_nominal_budget(200), 200);
        assert!(gov.observe(0.1, &stats(0, 0)).is_some());
        assert_eq!(gov.set_nominal_budget(400), 200);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn inverted_hysteresis_band_panics() {
        let config = DegradationConfig {
            health_enter: 0.8,
            health_exit: 0.6,
            ..DegradationConfig::default()
        };
        DegradationGovernor::new(1, config);
    }
}
