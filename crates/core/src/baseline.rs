//! Comparison systems: the full-battery NV-DRAM baseline the paper
//! evaluates against, and the flawed periodic-counting tracker §4.1 rejects.

use mem_sim::{Mmu, MmuStats, PageId, WalkOptions};
use sim_clock::{Clock, CostModel};
use ssd_sim::{Ssd, SsdConfig};

use crate::engine::{Engine, FullDirty};
use crate::{NvHeap, PowerFailureReport, RegionId, ViyojitConfig, ViyojitError};

/// State-of-the-art battery-backed DRAM: a battery sized for the *entire*
/// NV-DRAM capacity, so no tracking, no write protection, and no copy-out
/// traffic. This is the "NV-DRAM" baseline of Figs. 7-8.
///
/// A thin wrapper over [`Engine`] with the [`FullDirty`] backend (a
/// wrapper rather than an alias because the baseline takes no
/// [`ViyojitConfig`] — there is no budget to configure).
///
/// # Examples
///
/// ```
/// use sim_clock::{Clock, CostModel};
/// use ssd_sim::SsdConfig;
/// use viyojit::{NvdramBaseline, NvHeap};
///
/// let mut base = NvdramBaseline::new(16, Clock::new(), CostModel::free(), SsdConfig::instant());
/// let r = base.map(100)?;
/// base.write(r, 0, b"no faults ever")?;
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
#[derive(Debug)]
pub struct NvdramBaseline(Engine<FullDirty>);

impl NvdramBaseline {
    /// Creates a baseline over `total_pages` of NV-DRAM.
    pub fn new(total_pages: usize, clock: Clock, costs: CostModel, ssd_config: SsdConfig) -> Self {
        // The config is inert: the FullDirty backend bounds nothing.
        let config = ViyojitConfig::with_budget_pages(total_pages.max(1) as u64);
        NvdramBaseline(Engine::new(total_pages, config, clock, costs, ssd_config))
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        self.0.clock()
    }

    /// MMU access counters.
    pub fn mmu_stats(&self) -> MmuStats {
        self.0.mmu_stats()
    }

    /// The backing SSD.
    pub fn ssd(&self) -> &Ssd {
        self.0.ssd()
    }

    /// Attaches a telemetry handle. The baseline itself emits no control
    /// flow (no faults, no budget), so this only instruments its SSD.
    pub fn attach_telemetry(&mut self, telemetry: telemetry::Telemetry) {
        self.0.attach_telemetry(telemetry);
    }

    /// Attaches a virtual-time profiler. The baseline has no control loop
    /// to span, so this instruments only the MMU access costs and the
    /// SSD's device-time accounting.
    pub fn attach_profiler(&mut self, profiler: telemetry::Profiler) {
        self.0.attach_profiler(profiler);
    }

    /// Attaches a fault-injection plan (shared with the backing SSD).
    pub fn attach_faults(&mut self, faults: fault_sim::FaultPlan) {
        self.0.attach_faults(faults);
    }

    /// Simulates a power failure. The baseline must assume *everything*
    /// could be dirty, so the battery obligation is the entire NV-DRAM
    /// capacity — the scaling problem Viyojit removes.
    pub fn power_failure(&mut self) -> PowerFailureReport {
        self.0.power_failure()
    }

    /// Simulates a power failure racing a draining battery (see
    /// [`Engine::power_failure_powered`]). With a battery sized for the
    /// budget rather than the capacity, this is where the baseline's
    /// full-capacity obligation shows its cost.
    pub fn power_failure_powered(
        &mut self,
        battery: &battery_sim::Battery,
        power: &battery_sim::PowerModel,
    ) -> PowerFailureReport {
        self.0.power_failure_powered(battery, power)
    }

    /// Reloads NV-DRAM from the SSD after a power cycle.
    pub fn recover(&mut self) {
        self.0.recover();
    }
}

impl NvHeap for NvdramBaseline {
    fn map(&mut self, len_bytes: u64) -> Result<RegionId, ViyojitError> {
        self.0.map(len_bytes)
    }

    fn unmap(&mut self, region: RegionId) -> Result<(), ViyojitError> {
        self.0.unmap(region)
    }

    fn read(&mut self, region: RegionId, offset: u64, buf: &mut [u8]) -> Result<(), ViyojitError> {
        self.0.read(region, offset, buf)
    }

    fn write(&mut self, region: RegionId, offset: u64, data: &[u8]) -> Result<(), ViyojitError> {
        self.0.write(region, offset, data)
    }

    fn region_len(&self, region: RegionId) -> Result<u64, ViyojitError> {
        self.0.region_len(region)
    }
}

/// The seemingly-plausible design §4.1 rejects: count dirty pages only at
/// periodic check boundaries. Between two checks the dirty population can
/// exceed the budget unobserved, so durability is *not* guaranteed — the
/// motivation for Viyojit's synchronous fault-driven tracking.
///
/// # Examples
///
/// ```
/// use sim_clock::{Clock, CostModel};
/// use viyojit::PeriodicCountTracker;
///
/// let mut t = PeriodicCountTracker::new(64, 4, Clock::new(), CostModel::free());
/// for page in 0..10u64 {
///     t.write(page * 4096, b"burst");
/// }
/// // The instantaneous dirty population has blown through the budget,
/// // and the tracker has no idea until its next check.
/// assert!(t.instantaneous_dirty() > t.budget_pages());
/// ```
#[derive(Debug)]
pub struct PeriodicCountTracker {
    mmu: Mmu,
    budget_pages: u64,
    observed_peak: u64,
}

impl PeriodicCountTracker {
    /// Creates a tracker over `total_pages` writable pages with the given
    /// budget.
    pub fn new(total_pages: usize, budget_pages: u64, clock: Clock, costs: CostModel) -> Self {
        PeriodicCountTracker {
            mmu: Mmu::new(total_pages, clock, costs),
            budget_pages,
            observed_peak: 0,
        }
    }

    /// The budget this tracker is supposed to enforce.
    pub fn budget_pages(&self) -> u64 {
        self.budget_pages
    }

    /// An unhindered write (no protection, no faults).
    ///
    /// # Panics
    ///
    /// Panics if the write is out of range or crosses a page boundary.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        self.mmu.write(addr, data).expect("unprotected write");
    }

    /// The true number of dirty pages right now — information the periodic
    /// design does not have between checks.
    pub fn instantaneous_dirty(&self) -> u64 {
        self.mmu.page_table().dirty_count() as u64
    }

    /// The periodic check: walks the page table, records the observed
    /// count, and "flushes" (clears) everything over the budget. Returns
    /// the count it observed.
    pub fn periodic_check(&mut self) -> u64 {
        let pages: Vec<PageId> = (0..self.mmu.pages() as u64).map(PageId).collect();
        let dirty = self.mmu.walk_and_clear_dirty(&pages, WalkOptions::exact());
        let count = dirty.len() as u64;
        self.observed_peak = self.observed_peak.max(count);
        count
    }

    /// The largest dirty count any periodic check ever observed. Always a
    /// *lower bound* on the true peak, which is the flaw.
    pub fn observed_peak(&self) -> u64 {
        self.observed_peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NvHeap;
    use mem_sim::PAGE_SIZE;

    #[test]
    fn baseline_never_faults() {
        let mut b = NvdramBaseline::new(8, Clock::new(), CostModel::free(), SsdConfig::instant());
        let r = b.map(PAGE_SIZE as u64 * 4).unwrap();
        for i in 0..4u64 {
            b.write(r, i * PAGE_SIZE as u64, &[i as u8; 64]).unwrap();
        }
        assert_eq!(b.mmu_stats().write_faults, 0);
        let mut buf = [0u8; 64];
        b.read(r, 3 * PAGE_SIZE as u64, &mut buf).unwrap();
        assert_eq!(buf, [3u8; 64]);
    }

    #[test]
    fn baseline_battery_obligation_is_full_capacity() {
        let mut b = NvdramBaseline::new(100, Clock::new(), CostModel::free(), SsdConfig::instant());
        let _ = b.map(PAGE_SIZE as u64).unwrap();
        let report = b.power_failure();
        assert_eq!(report.dirty_pages, 100, "baseline must back up everything");
    }

    #[test]
    fn baseline_power_cycle_preserves_mapped_data() {
        let mut b = NvdramBaseline::new(8, Clock::new(), CostModel::free(), SsdConfig::instant());
        let r = b.map(PAGE_SIZE as u64 * 2).unwrap();
        b.write(r, 100, b"survive me").unwrap();
        b.power_failure();
        b.recover();
        let mut buf = [0u8; 10];
        b.read(r, 100, &mut buf).unwrap();
        assert_eq!(&buf, b"survive me");
    }

    #[test]
    fn periodic_counting_misses_transient_violations() {
        // The §4.1 argument, executed: a burst between checks exceeds the
        // budget, but no periodic observation ever sees a violation.
        let mut t = PeriodicCountTracker::new(64, 4, Clock::new(), CostModel::free());
        for round in 0..4 {
            for p in 0..8u64 {
                t.write((round * 8 + p) * PAGE_SIZE as u64, b"x");
            }
            let true_peak = t.instantaneous_dirty();
            assert!(true_peak > t.budget_pages(), "burst exceeded the budget");
            t.periodic_check();
        }
        // Every check happened *after* the burst already violated the
        // budget; the observed peak understates nothing here (checks see 8
        // > 4), but shift the check earlier and it sees nothing:
        let mut t2 = PeriodicCountTracker::new(64, 4, Clock::new(), CostModel::free());
        t2.periodic_check(); // checks when clean
        for p in 0..8u64 {
            t2.write(p * PAGE_SIZE as u64, b"x");
        }
        assert_eq!(t2.observed_peak(), 0, "violation invisible to the checker");
        assert!(t2.instantaneous_dirty() > t2.budget_pages());
    }
}
