//! The public store abstraction: everything a driver, benchmark, or
//! application needs from an NV-DRAM layer beyond the raw [`NvHeap`]
//! mapping surface.
//!
//! The bench crate used to improvise this privately; promoting it makes
//! new store variants (sharded managers, alternative trackers) usable by
//! the experiment driver, the examples, and the cross-crate tests with
//! no driver changes.

use sim_clock::{Clock, SimDuration};
use telemetry::Telemetry;

use crate::{
    MmuAssistedViyojit, NvHeap, NvdramBaseline, PowerFailureReport, Viyojit, ViyojitStats,
};

/// A complete NV-DRAM store: heap mapping plus the instrumentation and
/// power-failure surface shared by every implementation.
///
/// Implemented by [`Viyojit`] (the paper's software manager),
/// [`MmuAssistedViyojit`] (the §5.4 hardware offload), and
/// [`NvdramBaseline`] (the full-battery comparison system).
///
/// # Examples
///
/// ```
/// use sim_clock::{Clock, CostModel};
/// use ssd_sim::SsdConfig;
/// use viyojit::{NvStore, Viyojit, ViyojitConfig};
///
/// fn exercise<S: NvStore>(mut store: S) -> u64 {
///     let r = store.map(4096 * 8).unwrap();
///     store.write(r, 0, b"generic over any store").unwrap();
///     store.power_failure().dirty_pages
/// }
///
/// let v = Viyojit::new(
///     64,
///     ViyojitConfig::builder(8).build().unwrap(),
///     Clock::new(),
///     CostModel::free(),
///     SsdConfig::instant(),
/// );
/// assert!(exercise(v) <= 8);
/// ```
pub trait NvStore: NvHeap {
    /// Display name of the system ("Viyojit", "Viyojit-MMU", "NV-DRAM").
    fn system(&self) -> &'static str;

    /// A handle on the store's virtual clock.
    fn shared_clock(&self) -> Clock;

    /// Attaches a telemetry handle to the store (and its backing SSD).
    fn attach_telemetry(&mut self, telemetry: Telemetry);

    /// Runtime counters, if the store tracks dirty state (`None` for the
    /// baseline, which has nothing to track).
    fn runtime_stats(&self) -> Option<ViyojitStats>;

    /// Bytes the store has written to its backing SSD so far.
    fn ssd_bytes_written(&self) -> u64;

    /// Erase-block cycles the store has cost its backing SSD so far.
    fn ssd_erases(&self) -> u64;

    /// Simulates an external power failure, flushing whatever the design
    /// obliges the battery to flush.
    fn power_failure(&mut self) -> PowerFailureReport;

    /// Rebuilds NV-DRAM from the SSD after a power cycle.
    fn recover(&mut self);

    /// The end-of-run power-failure flush time (the Fig. 9 tail write).
    fn final_flush(&mut self) -> SimDuration {
        self.power_failure().flush_time
    }
}

impl NvStore for Viyojit {
    fn system(&self) -> &'static str {
        "Viyojit"
    }
    fn shared_clock(&self) -> Clock {
        self.clock().clone()
    }
    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        Viyojit::attach_telemetry(self, telemetry);
    }
    fn runtime_stats(&self) -> Option<ViyojitStats> {
        Some(self.stats())
    }
    fn ssd_bytes_written(&self) -> u64 {
        self.ssd_stats().bytes_written
    }
    fn ssd_erases(&self) -> u64 {
        self.ssd().wear().total_erases()
    }
    fn power_failure(&mut self) -> PowerFailureReport {
        Viyojit::power_failure(self)
    }
    fn recover(&mut self) {
        Viyojit::recover(self);
    }
}

impl NvStore for MmuAssistedViyojit {
    fn system(&self) -> &'static str {
        "Viyojit-MMU"
    }
    fn shared_clock(&self) -> Clock {
        self.clock().clone()
    }
    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        MmuAssistedViyojit::attach_telemetry(self, telemetry);
    }
    fn runtime_stats(&self) -> Option<ViyojitStats> {
        Some(self.stats())
    }
    fn ssd_bytes_written(&self) -> u64 {
        self.ssd_stats().bytes_written
    }
    fn ssd_erases(&self) -> u64 {
        self.ssd().wear().total_erases()
    }
    fn power_failure(&mut self) -> PowerFailureReport {
        MmuAssistedViyojit::power_failure(self)
    }
    fn recover(&mut self) {
        MmuAssistedViyojit::recover(self);
    }
}

impl NvStore for NvdramBaseline {
    fn system(&self) -> &'static str {
        "NV-DRAM"
    }
    fn shared_clock(&self) -> Clock {
        self.clock().clone()
    }
    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        NvdramBaseline::attach_telemetry(self, telemetry);
    }
    fn runtime_stats(&self) -> Option<ViyojitStats> {
        None
    }
    fn ssd_bytes_written(&self) -> u64 {
        self.ssd().stats().bytes_written
    }
    fn ssd_erases(&self) -> u64 {
        self.ssd().wear().total_erases()
    }
    fn power_failure(&mut self) -> PowerFailureReport {
        NvdramBaseline::power_failure(self)
    }
    fn recover(&mut self) {
        NvdramBaseline::recover(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ViyojitConfig;
    use sim_clock::CostModel;
    use ssd_sim::SsdConfig;
    use telemetry::TraceEvent;

    fn drive<S: NvStore>(mut store: S) -> (u64, SimDuration) {
        let r = store.map(4096 * 8).unwrap();
        for i in 0..8u64 {
            store.write(r, i * 4096, &[i as u8; 32]).unwrap();
        }
        let report = store.power_failure();
        store.recover();
        (report.dirty_pages, report.flush_time)
    }

    #[test]
    fn all_three_stores_drive_through_the_trait() {
        let cfg = || ViyojitConfig::with_budget_pages(4);
        let v = Viyojit::new(
            64,
            cfg(),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let hw = MmuAssistedViyojit::new(
            64,
            cfg(),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let base = NvdramBaseline::new(64, Clock::new(), CostModel::free(), SsdConfig::instant());
        assert_eq!(v.system(), "Viyojit");
        assert_eq!(hw.system(), "Viyojit-MMU");
        assert_eq!(base.system(), "NV-DRAM");
        assert!(drive(v).0 <= 4);
        assert!(drive(hw).0 <= 4);
        assert_eq!(drive(base).0, 64, "baseline backs up everything");
    }

    #[test]
    fn telemetry_attaches_through_the_trait() {
        let clock = Clock::new();
        let telemetry = Telemetry::recording(clock.clone());
        let mut v: Box<dyn NvStore> = Box::new(Viyojit::new(
            64,
            ViyojitConfig::with_budget_pages(2),
            clock.clone(),
            CostModel::free(),
            SsdConfig::instant(),
        ));
        v.attach_telemetry(telemetry.clone());
        let r = v.map(4096 * 8).unwrap();
        for i in 0..8u64 {
            v.write(r, i * 4096, &[1]).unwrap();
        }
        let events = telemetry.events();
        assert!(events
            .iter()
            .any(|e| matches!(e.event, TraceEvent::WriteFault { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.event, TraceEvent::SsdSubmit { .. })));
    }
}
