//! The public store abstraction: everything a driver, benchmark, or
//! application needs from an NV-DRAM layer beyond the raw [`NvHeap`]
//! mapping surface.
//!
//! The bench crate used to improvise this privately; promoting it makes
//! new store variants (sharded managers, alternative trackers) usable by
//! the experiment driver, the examples, and the cross-crate tests with
//! no driver changes. Since the engine unification a single generic impl
//! covers every [`Engine`] backend; the sharded frontend and the baseline
//! wrapper add their own.

use fault_sim::FaultPlan;
use sim_clock::{Clock, SimDuration};
use telemetry::{Profiler, Telemetry};

use crate::engine::{DirtyTracker, Engine, ShardedViyojit};
use crate::{NvHeap, NvdramBaseline, PowerFailureReport, ViyojitStats};

/// A complete NV-DRAM store: heap mapping plus the instrumentation and
/// power-failure surface shared by every implementation.
///
/// Implemented generically for every [`Engine`] backend — so by
/// [`Viyojit`](crate::Viyojit) (the paper's software manager) and
/// [`MmuAssistedViyojit`](crate::MmuAssistedViyojit) (the §5.4 hardware
/// offload) — and separately by [`NvdramBaseline`] (the full-battery
/// comparison system) and [`ShardedViyojit`] (the multi-shard frontend).
///
/// # Examples
///
/// ```
/// use sim_clock::{Clock, CostModel};
/// use ssd_sim::SsdConfig;
/// use viyojit::{NvStore, Viyojit, ViyojitConfig};
///
/// fn exercise<S: NvStore>(mut store: S) -> u64 {
///     let r = store.map(4096 * 8).unwrap();
///     store.write(r, 0, b"generic over any store").unwrap();
///     store.power_failure().dirty_pages
/// }
///
/// let v = Viyojit::new(
///     64,
///     ViyojitConfig::builder(8).build().unwrap(),
///     Clock::new(),
///     CostModel::free(),
///     SsdConfig::instant(),
/// );
/// assert!(exercise(v) <= 8);
/// ```
pub trait NvStore: NvHeap {
    /// Display name of the system ("Viyojit", "Viyojit-MMU", "NV-DRAM").
    fn system(&self) -> &'static str;

    /// A handle on the store's virtual clock.
    fn shared_clock(&self) -> Clock;

    /// Attaches a telemetry handle to the store (and its backing SSD).
    fn attach_telemetry(&mut self, telemetry: Telemetry);

    /// Attaches a virtual-time profiler to the store (and its MMU and
    /// SSD). The default ignores the handle — stores without span
    /// instrumentation simply record nothing.
    fn attach_profiler(&mut self, _profiler: Profiler) {}

    /// Attaches a fault-injection plan to the store (and its backing
    /// SSD). The default ignores the plan — stores without fault support
    /// simply never inject.
    fn attach_faults(&mut self, _faults: FaultPlan) {}

    /// Runtime counters, if the store tracks dirty state (`None` for the
    /// baseline, which has nothing to track).
    fn runtime_stats(&self) -> Option<ViyojitStats>;

    /// Bytes the store has written to its backing SSD so far.
    fn ssd_bytes_written(&self) -> u64;

    /// Erase-block cycles the store has cost its backing SSD so far.
    fn ssd_erases(&self) -> u64;

    /// Simulates an external power failure, flushing whatever the design
    /// obliges the battery to flush.
    fn power_failure(&mut self) -> PowerFailureReport;

    /// Rebuilds NV-DRAM from the SSD after a power cycle.
    fn recover(&mut self);

    /// The end-of-run power-failure flush time (the Fig. 9 tail write).
    fn final_flush(&mut self) -> SimDuration {
        self.power_failure().flush_time
    }
}

impl<B: DirtyTracker> NvStore for Engine<B> {
    fn system(&self) -> &'static str {
        B::SYSTEM
    }
    fn shared_clock(&self) -> Clock {
        self.clock().clone()
    }
    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        Engine::attach_telemetry(self, telemetry);
    }
    fn attach_profiler(&mut self, profiler: Profiler) {
        Engine::attach_profiler(self, profiler);
    }
    fn attach_faults(&mut self, faults: FaultPlan) {
        Engine::attach_faults(self, faults);
    }
    fn runtime_stats(&self) -> Option<ViyojitStats> {
        B::HAS_CONTROL_LOOP.then(|| self.stats())
    }
    fn ssd_bytes_written(&self) -> u64 {
        self.ssd_stats().bytes_written
    }
    fn ssd_erases(&self) -> u64 {
        self.ssd().wear().total_erases()
    }
    fn power_failure(&mut self) -> PowerFailureReport {
        Engine::power_failure(self)
    }
    fn recover(&mut self) {
        Engine::recover(self);
    }
}

impl NvStore for NvdramBaseline {
    fn system(&self) -> &'static str {
        "NV-DRAM"
    }
    fn shared_clock(&self) -> Clock {
        self.clock().clone()
    }
    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        NvdramBaseline::attach_telemetry(self, telemetry);
    }
    fn attach_profiler(&mut self, profiler: Profiler) {
        NvdramBaseline::attach_profiler(self, profiler);
    }
    fn attach_faults(&mut self, faults: FaultPlan) {
        NvdramBaseline::attach_faults(self, faults);
    }
    fn runtime_stats(&self) -> Option<ViyojitStats> {
        None
    }
    fn ssd_bytes_written(&self) -> u64 {
        self.ssd().stats().bytes_written
    }
    fn ssd_erases(&self) -> u64 {
        self.ssd().wear().total_erases()
    }
    fn power_failure(&mut self) -> PowerFailureReport {
        NvdramBaseline::power_failure(self)
    }
    fn recover(&mut self) {
        NvdramBaseline::recover(self);
    }
}

impl<B: DirtyTracker> NvStore for ShardedViyojit<B> {
    fn system(&self) -> &'static str {
        "Viyojit-Sharded"
    }
    fn shared_clock(&self) -> Clock {
        self.clock().clone()
    }
    fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.install_telemetry(telemetry);
    }
    fn attach_profiler(&mut self, profiler: Profiler) {
        self.install_profiler(profiler);
    }
    fn attach_faults(&mut self, faults: FaultPlan) {
        self.install_faults(faults);
    }
    fn runtime_stats(&self) -> Option<ViyojitStats> {
        Some(self.stats())
    }
    fn ssd_bytes_written(&self) -> u64 {
        self.ssd_stats().bytes_written
    }
    fn ssd_erases(&self) -> u64 {
        (0..self.shard_count())
            .map(|i| self.shard(i).ssd().wear().total_erases())
            .sum()
    }
    fn power_failure(&mut self) -> PowerFailureReport {
        ShardedViyojit::power_failure(self)
    }
    fn recover(&mut self) {
        ShardedViyojit::recover(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MmuAssistedViyojit, Viyojit, ViyojitConfig};
    use sim_clock::CostModel;
    use ssd_sim::SsdConfig;
    use telemetry::TraceEvent;

    fn drive<S: NvStore>(mut store: S) -> (u64, SimDuration) {
        let r = store.map(4096 * 8).unwrap();
        for i in 0..8u64 {
            store.write(r, i * 4096, &[i as u8; 32]).unwrap();
        }
        let report = store.power_failure();
        store.recover();
        (report.dirty_pages, report.flush_time)
    }

    #[test]
    fn all_three_stores_drive_through_the_trait() {
        let cfg = || ViyojitConfig::with_budget_pages(4);
        let v = Viyojit::new(
            64,
            cfg(),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let hw = MmuAssistedViyojit::new(
            64,
            cfg(),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let base = NvdramBaseline::new(64, Clock::new(), CostModel::free(), SsdConfig::instant());
        assert_eq!(v.system(), "Viyojit");
        assert_eq!(hw.system(), "Viyojit-MMU");
        assert_eq!(base.system(), "NV-DRAM");
        assert!(drive(v).0 <= 4);
        assert!(drive(hw).0 <= 4);
        assert_eq!(drive(base).0, 64, "baseline backs up everything");
    }

    #[test]
    fn telemetry_attaches_through_the_trait() {
        let clock = Clock::new();
        let telemetry = Telemetry::recording(clock.clone());
        let mut v: Box<dyn NvStore> = Box::new(Viyojit::new(
            64,
            ViyojitConfig::with_budget_pages(2),
            clock.clone(),
            CostModel::free(),
            SsdConfig::instant(),
        ));
        v.attach_telemetry(telemetry.clone());
        let r = v.map(4096 * 8).unwrap();
        for i in 0..8u64 {
            v.write(r, i * 4096, &[1]).unwrap();
        }
        let events = telemetry.events();
        assert!(events
            .iter()
            .any(|e| matches!(e.event, TraceEvent::WriteFault { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.event, TraceEvent::SsdSubmit { .. })));
    }

    #[test]
    fn the_sharded_store_drives_through_the_trait() {
        use sim_clock::SimDuration;
        let sharded = crate::ShardedViyojitBuilder::new(2, 64, ViyojitConfig::with_budget_pages(8))
            .min_per_shard(2)
            .rebalance_period(SimDuration::from_millis(1))
            .build_sequential()
            .expect("a valid sharded configuration");
        assert_eq!(sharded.system(), "Viyojit-Sharded");
        assert!(sharded.runtime_stats().is_some());
        let (dirty, _) = drive(sharded);
        assert!(dirty <= 8, "global budget bounds the sharded flush");
    }
}
