//! The NV-DRAM access abstraction shared by Viyojit and the full-battery
//! baseline.

use crate::{RegionId, ViyojitError};

/// A byte-addressable non-volatile heap with an mmap-like surface.
///
/// Both [`Viyojit`](crate::Viyojit) (dirty-budgeted) and
/// [`NvdramBaseline`](crate::NvdramBaseline) (full battery, no tracking)
/// implement this trait, so applications — the persistent allocator, the
/// key-value store, the benchmark drivers — run unmodified against either,
/// which is how the paper's Viyojit-vs-NV-DRAM comparisons are made.
///
/// # Examples
///
/// ```
/// use sim_clock::{Clock, CostModel};
/// use ssd_sim::SsdConfig;
/// use viyojit::{NvHeap, Viyojit, ViyojitConfig};
///
/// fn store_u64<H: NvHeap>(heap: &mut H) -> Result<u64, viyojit::ViyojitError> {
///     let r = heap.map(8)?;
///     heap.write(r, 0, &42u64.to_le_bytes())?;
///     let mut buf = [0u8; 8];
///     heap.read(r, 0, &mut buf)?;
///     Ok(u64::from_le_bytes(buf))
/// }
///
/// let mut v = Viyojit::new(
///     64,
///     ViyojitConfig::with_budget_pages(8),
///     Clock::new(),
///     CostModel::free(),
///     SsdConfig::instant(),
/// );
/// assert_eq!(store_u64(&mut v)?, 42);
/// # Ok::<(), viyojit::ViyojitError>(())
/// ```
pub trait NvHeap {
    /// Maps `len_bytes` of NV-DRAM, returning a region handle
    /// (the paper's `mmap` analogue).
    ///
    /// # Errors
    ///
    /// [`ViyojitError::EmptyMapping`] for zero-length requests,
    /// [`ViyojitError::OutOfSpace`] when no contiguous run fits.
    fn map(&mut self, len_bytes: u64) -> Result<RegionId, ViyojitError>;

    /// Unmaps a region (the `munmap` analogue). Its dirty pages stop
    /// counting against the budget.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::BadRegion`] for dead handles.
    fn unmap(&mut self, region: RegionId) -> Result<(), ViyojitError>;

    /// Reads `buf.len()` bytes at `offset` within `region`.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::BadRegion`] / [`ViyojitError::OutOfRange`].
    fn read(&mut self, region: RegionId, offset: u64, buf: &mut [u8]) -> Result<(), ViyojitError>;

    /// Writes `data` at `offset` within `region`. May stall (advancing the
    /// virtual clock) when the dirty budget is exhausted.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::BadRegion`] / [`ViyojitError::OutOfRange`].
    fn write(&mut self, region: RegionId, offset: u64, data: &[u8]) -> Result<(), ViyojitError>;

    /// The mapped length of `region` in bytes.
    ///
    /// # Errors
    ///
    /// [`ViyojitError::BadRegion`] for dead handles.
    fn region_len(&self, region: RegionId) -> Result<u64, ViyojitError>;
}
