//! Property test of the ordered index: `scan` must agree with a
//! `BTreeMap` range query under random inserts, updates, and deletes.

use std::collections::BTreeMap;

use kvstore::KvStore;
use pheap::PHeap;
use proptest::prelude::*;
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use viyojit::NvdramBaseline;

#[derive(Debug, Clone)]
enum Op {
    Set { key: u8, val: u8 },
    Delete { key: u8 },
    Scan { start: u8, limit: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), any::<u8>()).prop_map(|(key, val)| Op::Set { key, val }),
        2 => any::<u8>().prop_map(|key| Op::Delete { key }),
        3 => (any::<u8>(), 1..40u8).prop_map(|(start, limit)| Op::Scan { start, limit }),
    ]
}

fn key_bytes(key: u8) -> Vec<u8> {
    format!("row-{key:03}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scans_agree_with_btreemap_ranges(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        let nv = NvdramBaseline::new(
            512,
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let heap = PHeap::format(nv, 480 * 4096).unwrap();
        let mut kv = KvStore::create(heap, 64).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::Set { key, val } => {
                    let k = key_bytes(key);
                    let v = vec![val; 64];
                    kv.set(&k, &v).unwrap();
                    model.insert(k, v);
                }
                Op::Delete { key } => {
                    let k = key_bytes(key);
                    prop_assert_eq!(kv.delete(&k).unwrap(), model.remove(&k).is_some());
                }
                Op::Scan { start, limit } => {
                    let s = key_bytes(start);
                    let got = kv.scan(&s, limit as usize).unwrap();
                    let want: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(s..)
                        .take(limit as usize)
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        // The index must still agree with the hash table exactly.
        prop_assert_eq!(kv.audit_index().unwrap(), model.len() as u64);
    }
}
