//! Model-based property test: the persistent store must behave exactly
//! like `std::collections::HashMap` under random operation sequences,
//! including across power cycles at arbitrary points.

use std::collections::HashMap;

use kvstore::{KvError, KvStore};
use pheap::PHeap;
use proptest::prelude::*;
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use viyojit::{Viyojit, ViyojitConfig};

#[derive(Debug, Clone)]
enum Op {
    Set { key: u8, val_len: usize, fill: u8 },
    Get { key: u8 },
    Delete { key: u8 },
    PowerCycle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u8>(), 1..1500usize, any::<u8>())
            .prop_map(|(key, val_len, fill)| Op::Set { key, val_len, fill }),
        3 => any::<u8>().prop_map(|key| Op::Get { key }),
        2 => any::<u8>().prop_map(|key| Op::Delete { key }),
        1 => Just(Op::PowerCycle),
    ]
}

fn key_bytes(key: u8) -> Vec<u8> {
    format!("key-{key:03}").into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn store_matches_hashmap_across_power_cycles(
        ops in prop::collection::vec(op_strategy(), 1..100),
        budget in 2..24u64,
    ) {
        let nv = Viyojit::new(
            512,
            ViyojitConfig::with_budget_pages(budget),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let heap = PHeap::format(nv, 480 * 4096).unwrap();
        let region = heap.region();
        let mut kv = KvStore::create(heap, 32).unwrap();
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();

        for op in &ops {
            match *op {
                Op::Set { key, val_len, fill } => {
                    let k = key_bytes(key);
                    let v = vec![fill; val_len];
                    match kv.set(&k, &v) {
                        Ok(()) => { model.insert(k, v); }
                        Err(KvError::Heap(pheap::PHeapError::OutOfMemory)) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("set: {e}"))),
                    }
                }
                Op::Get { key } => {
                    let k = key_bytes(key);
                    prop_assert_eq!(kv.get(&k).unwrap(), model.get(&k).cloned());
                }
                Op::Delete { key } => {
                    let k = key_bytes(key);
                    let was = kv.delete(&k).unwrap();
                    prop_assert_eq!(was, model.remove(&k).is_some());
                }
                Op::PowerCycle => {
                    let mut nv = kv.into_heap().into_inner();
                    let report = nv.power_failure();
                    prop_assert!(report.dirty_pages <= budget);
                    nv.recover();
                    let heap = PHeap::open(nv, region).unwrap();
                    kv = KvStore::open(heap).unwrap();
                }
            }
        }

        // Full final audit.
        prop_assert_eq!(kv.len().unwrap(), model.len() as u64);
        for (k, v) in &model {
            let got = kv.get(k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }
}
