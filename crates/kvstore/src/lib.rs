//! A Redis-like in-memory key-value store whose data *and* metadata live in
//! a persistent NV-DRAM heap — the application the Viyojit paper evaluates
//! (a Redis modified to keep its key-value pairs and metadata in a
//! non-volatile heap via the PMEM library, §6.1).
//!
//! Design notes mirroring the original:
//!
//! - a chained hash table whose bucket segments, entry nodes, and counters
//!   are all [`pheap`] allocations, so every operation generates realistic
//!   NV-DRAM write traffic;
//! - **reads update metadata**: like Redis's per-entry LRU clock, every
//!   `get` stamps the entry's access field. This is why the paper's
//!   "read-only" YCSB-C still dirties pages (§6.2);
//! - after a power cycle the store is reopened from the heap's root
//!   directory and serves reads as a warm cache — the paper's headline use
//!   case.
//!
//! # Examples
//!
//! ```
//! use kvstore::KvStore;
//! use pheap::PHeap;
//! use sim_clock::{Clock, CostModel};
//! use ssd_sim::SsdConfig;
//! use viyojit::{Viyojit, ViyojitConfig};
//!
//! let nv = Viyojit::new(
//!     128,
//!     ViyojitConfig::with_budget_pages(16),
//!     Clock::new(),
//!     CostModel::free(),
//!     SsdConfig::instant(),
//! );
//! let heap = PHeap::format(nv, 100 * 4096)?;
//! let mut kv = KvStore::create(heap, 256)?;
//! kv.set(b"user:42", b"{\"name\":\"ada\"}")?;
//! assert_eq!(kv.get(b"user:42")?.as_deref(), Some(&b"{\"name\":\"ada\"}"[..]));
//! # Ok::<(), kvstore::KvError>(())
//! ```

mod error;
mod hash;
mod index;
mod store;

pub use error::KvError;
pub use hash::fnv1a_64;
pub use store::{KvStats, KvStore, ScanResults};
