//! Error type of the key-value store.

use std::error::Error;
use std::fmt;

use pheap::PHeapError;

/// Why a key-value operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// Key exceeds the maximum encodable length.
    KeyTooLarge {
        /// Bytes in the offending key.
        len: usize,
    },
    /// Key + value exceed what one heap allocation can hold.
    ValueTooLarge {
        /// Combined entry payload size.
        len: usize,
    },
    /// The region does not hold a formatted store.
    NotAStore,
    /// The persistent heap failed (out of memory, bad pointer, ...).
    Heap(PHeapError),
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::KeyTooLarge { len } => write!(f, "key of {len} bytes is too large"),
            KvError::ValueTooLarge { len } => {
                write!(f, "entry of {len} bytes exceeds the allocation limit")
            }
            KvError::NotAStore => write!(f, "heap does not contain a key-value store"),
            KvError::Heap(e) => write!(f, "persistent heap error: {e}"),
        }
    }
}

impl Error for KvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KvError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PHeapError> for KvError {
    fn from(e: PHeapError) -> Self {
        KvError::Heap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(KvError::KeyTooLarge { len: 9 }.to_string().contains('9'));
        assert!(KvError::NotAStore.to_string().contains("store"));
    }

    #[test]
    fn heap_errors_convert_and_chain() {
        let e: KvError = PHeapError::OutOfMemory.into();
        assert!(Error::source(&e).is_some());
    }
}
