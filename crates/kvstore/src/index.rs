//! A persistent skip list ordering keys lexicographically — the ordered
//! index behind `scan`, the cross-key capability the paper lists as
//! future work ("We could not run YCSB-E because it requires cross key
//! transactions which we do not support for now. We wish to add this to
//! our NV-DRAM based Redis in the future", §6.1).
//!
//! The index lives entirely in the persistent heap: nodes carry a pointer
//! to the hash-table entry header (which never relocates — only value
//! blobs do), per-level forward pointers, and the key bytes. Levels are
//! derived deterministically from the key hash, so no RNG state needs to
//! survive power cycles.
//!
//! Like the rest of the store, crash consistency comes from battery-backed
//! DRAM semantics: a power failure flushes the whole dirty image, so
//! in-place pointer updates are safe without logging.

use pheap::{PHeap, PPtr};
use viyojit::NvHeap;

use crate::{fnv1a_64, KvError};

/// Maximum tower height; with p = 1/4 this covers ~4^12 keys.
pub(crate) const MAX_LEVEL: usize = 12;

/// Node field offsets.
const IDX_KEY_LEN: u64 = 0; // u32
const IDX_LEVEL: u64 = 4; // u32
const IDX_ENTRY: u64 = 8; // u64: hash-table entry header (0 = head)
const IDX_NEXT: u64 = 16; // u64 x level
const fn key_offset(level: usize) -> u64 {
    IDX_NEXT + (level as u64) * 8
}

/// Deterministic tower height for `key` (p = 1/4 per extra level).
fn level_for(key: &[u8]) -> usize {
    // A different seed than bucket hashing, so bucket and level are
    // independent.
    let h = fnv1a_64(key) ^ 0x9e37_79b9_7f4a_7c15;
    ((h.trailing_zeros() / 2) as usize + 1).min(MAX_LEVEL)
}

/// The persistent ordered index. Holds only the head pointer; all state
/// is in the heap.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SkipIndex {
    head: PPtr,
}

impl SkipIndex {
    /// Allocates an empty index (one head sentinel with a full tower).
    pub(crate) fn create<H: NvHeap>(heap: &mut PHeap<H>) -> Result<Self, KvError> {
        let head = heap.alloc(key_offset(MAX_LEVEL) as usize)?;
        let mut image = vec![0u8; key_offset(MAX_LEVEL) as usize];
        image[IDX_LEVEL as usize..IDX_LEVEL as usize + 4]
            .copy_from_slice(&(MAX_LEVEL as u32).to_le_bytes());
        heap.write(head, 0, &image)?;
        Ok(SkipIndex { head })
    }

    /// Reopens an index from its persisted head pointer.
    pub(crate) fn open(head: PPtr) -> Self {
        SkipIndex { head }
    }

    /// The head pointer, for persisting in the store's meta block.
    pub(crate) fn head(&self) -> PPtr {
        self.head
    }

    fn node_u32<H: NvHeap>(heap: &mut PHeap<H>, node: PPtr, field: u64) -> Result<u32, KvError> {
        let mut buf = [0u8; 4];
        heap.read(node, field, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    fn node_u64<H: NvHeap>(heap: &mut PHeap<H>, node: PPtr, field: u64) -> Result<u64, KvError> {
        let mut buf = [0u8; 8];
        heap.read(node, field, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn next_of<H: NvHeap>(heap: &mut PHeap<H>, node: PPtr, level: usize) -> Result<u64, KvError> {
        Self::node_u64(heap, node, IDX_NEXT + (level as u64) * 8)
    }

    fn set_next<H: NvHeap>(
        heap: &mut PHeap<H>,
        node: PPtr,
        level: usize,
        to: u64,
    ) -> Result<(), KvError> {
        heap.write(node, IDX_NEXT + (level as u64) * 8, &to.to_le_bytes())?;
        Ok(())
    }

    fn key_of<H: NvHeap>(heap: &mut PHeap<H>, node: PPtr) -> Result<Vec<u8>, KvError> {
        let klen = Self::node_u32(heap, node, IDX_KEY_LEN)? as usize;
        let level = Self::node_u32(heap, node, IDX_LEVEL)? as usize;
        let mut key = vec![0u8; klen];
        heap.read(node, key_offset(level), &mut key)?;
        Ok(key)
    }

    /// Finds the last node strictly before `key` at every level.
    fn find_predecessors<H: NvHeap>(
        &self,
        heap: &mut PHeap<H>,
        key: &[u8],
    ) -> Result<[PPtr; MAX_LEVEL], KvError> {
        let mut preds = [self.head; MAX_LEVEL];
        let mut cur = self.head;
        for level in (0..MAX_LEVEL).rev() {
            loop {
                let next = Self::next_of(heap, cur, level)?;
                if next == 0 {
                    break;
                }
                let next_ptr = PPtr::from_offset(next);
                if Self::key_of(heap, next_ptr)?.as_slice() < key {
                    cur = next_ptr;
                } else {
                    break;
                }
            }
            preds[level] = cur;
        }
        Ok(preds)
    }

    /// Inserts `key` pointing at `entry` (the hash-table header node).
    /// The caller guarantees the key is not already present.
    #[allow(clippy::needless_range_loop)] // preds and the node tower are indexed in lockstep
    pub(crate) fn insert<H: NvHeap>(
        &self,
        heap: &mut PHeap<H>,
        key: &[u8],
        entry: PPtr,
    ) -> Result<(), KvError> {
        let level = level_for(key);
        let preds = self.find_predecessors(heap, key)?;
        let node = heap.alloc(key_offset(level) as usize + key.len())?;

        let mut image = Vec::with_capacity(key_offset(level) as usize + key.len());
        image.extend_from_slice(&(key.len() as u32).to_le_bytes());
        image.extend_from_slice(&(level as u32).to_le_bytes());
        image.extend_from_slice(&entry.offset().to_le_bytes());
        for l in 0..level {
            let succ = Self::next_of(heap, preds[l], l)?;
            image.extend_from_slice(&succ.to_le_bytes());
        }
        image.extend_from_slice(key);
        heap.write(node, 0, &image)?;

        for l in 0..level {
            Self::set_next(heap, preds[l], l, node.offset())?;
        }
        Ok(())
    }

    /// Removes `key`, returning whether it was present.
    #[allow(clippy::needless_range_loop)] // preds and levels are indexed in lockstep
    pub(crate) fn remove<H: NvHeap>(
        &self,
        heap: &mut PHeap<H>,
        key: &[u8],
    ) -> Result<bool, KvError> {
        let preds = self.find_predecessors(heap, key)?;
        let candidate = Self::next_of(heap, preds[0], 0)?;
        if candidate == 0 {
            return Ok(false);
        }
        let node = PPtr::from_offset(candidate);
        if Self::key_of(heap, node)? != key {
            return Ok(false);
        }
        let level = Self::node_u32(heap, node, IDX_LEVEL)? as usize;
        for l in 0..level {
            if Self::next_of(heap, preds[l], l)? == node.offset() {
                let succ = Self::next_of(heap, node, l)?;
                Self::set_next(heap, preds[l], l, succ)?;
            }
        }
        heap.free(node)?;
        Ok(true)
    }

    /// Visits up to `limit` entries with keys `>= start`, in key order,
    /// yielding `(key, entry header ptr)`.
    pub(crate) fn scan_from<H: NvHeap>(
        &self,
        heap: &mut PHeap<H>,
        start: &[u8],
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, PPtr)>, KvError> {
        let preds = self.find_predecessors(heap, start)?;
        let mut out = Vec::with_capacity(limit.min(1024));
        let mut cur = Self::next_of(heap, preds[0], 0)?;
        while cur != 0 && out.len() < limit {
            let node = PPtr::from_offset(cur);
            let key = Self::key_of(heap, node)?;
            let entry = Self::node_u64(heap, node, IDX_ENTRY)?;
            out.push((key, PPtr::from_offset(entry)));
            cur = Self::next_of(heap, node, 0)?;
        }
        Ok(out)
    }

    /// Walks level 0 asserting order and returning the entry count (test
    /// and recovery-audit support).
    pub(crate) fn audit<H: NvHeap>(&self, heap: &mut PHeap<H>) -> Result<u64, KvError> {
        let mut count = 0u64;
        let mut prev: Option<Vec<u8>> = None;
        let mut cur = Self::next_of(heap, self.head, 0)?;
        while cur != 0 {
            let node = PPtr::from_offset(cur);
            let key = Self::key_of(heap, node)?;
            if let Some(p) = &prev {
                assert!(p < &key, "skip list out of order");
            }
            prev = Some(key);
            count += 1;
            cur = Self::next_of(heap, node, 0)?;
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::{Clock, CostModel};
    use ssd_sim::SsdConfig;
    use viyojit::NvdramBaseline;

    fn heap(pages: usize) -> PHeap<NvdramBaseline> {
        let nv = NvdramBaseline::new(pages, Clock::new(), CostModel::free(), SsdConfig::instant());
        PHeap::format(nv, (pages as u64 - 2) * 4096).unwrap()
    }

    #[test]
    fn insert_and_scan_in_key_order() {
        let mut h = heap(64);
        let idx = SkipIndex::create(&mut h).unwrap();
        let entry = h.alloc(16).unwrap();
        for key in ["delta", "alpha", "charlie", "bravo", "echo"] {
            idx.insert(&mut h, key.as_bytes(), entry).unwrap();
        }
        let hits = idx.scan_from(&mut h, b"", 10).unwrap();
        let keys: Vec<&[u8]> = hits.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(
            keys,
            [b"alpha" as &[u8], b"bravo", b"charlie", b"delta", b"echo"]
        );
        assert_eq!(idx.audit(&mut h).unwrap(), 5);
    }

    #[test]
    fn scan_starts_at_the_requested_key() {
        let mut h = heap(64);
        let idx = SkipIndex::create(&mut h).unwrap();
        let entry = h.alloc(16).unwrap();
        for i in 0..20u32 {
            idx.insert(&mut h, format!("k{i:03}").as_bytes(), entry)
                .unwrap();
        }
        let hits = idx.scan_from(&mut h, b"k007", 5).unwrap();
        let keys: Vec<String> = hits
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, ["k007", "k008", "k009", "k010", "k011"]);
        // Start between keys: lands on the next one.
        let hits = idx.scan_from(&mut h, b"k0075", 2).unwrap();
        assert_eq!(hits[0].0, b"k008");
    }

    #[test]
    fn remove_unlinks_at_every_level() {
        let mut h = heap(64);
        let idx = SkipIndex::create(&mut h).unwrap();
        let entry = h.alloc(16).unwrap();
        for i in 0..50u32 {
            idx.insert(&mut h, format!("k{i:03}").as_bytes(), entry)
                .unwrap();
        }
        for i in (0..50u32).step_by(3) {
            assert!(idx.remove(&mut h, format!("k{i:03}").as_bytes()).unwrap());
        }
        assert!(!idx.remove(&mut h, b"k000").unwrap(), "double remove");
        assert!(!idx.remove(&mut h, b"nope").unwrap(), "absent key");
        let expected = (0..50u32).filter(|i| i % 3 != 0).count() as u64;
        assert_eq!(idx.audit(&mut h).unwrap(), expected);
    }

    #[test]
    fn scan_limit_is_respected() {
        let mut h = heap(64);
        let idx = SkipIndex::create(&mut h).unwrap();
        let entry = h.alloc(16).unwrap();
        for i in 0..30u32 {
            idx.insert(&mut h, format!("x{i:02}").as_bytes(), entry)
                .unwrap();
        }
        assert_eq!(idx.scan_from(&mut h, b"", 7).unwrap().len(), 7);
        assert_eq!(idx.scan_from(&mut h, b"x29", 7).unwrap().len(), 1);
        assert_eq!(idx.scan_from(&mut h, b"z", 7).unwrap().len(), 0);
    }

    #[test]
    fn levels_are_deterministic_and_bounded() {
        for i in 0..1_000u32 {
            let key = format!("user{i}");
            let l1 = level_for(key.as_bytes());
            let l2 = level_for(key.as_bytes());
            assert_eq!(l1, l2);
            assert!((1..=MAX_LEVEL).contains(&l1));
        }
        // The distribution actually uses multiple levels.
        let tall = (0..1_000u32)
            .filter(|i| level_for(format!("user{i}").as_bytes()) > 1)
            .count();
        assert!((100..500).contains(&tall), "p=1/4 tower growth: {tall}");
    }
}
