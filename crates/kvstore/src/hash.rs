//! Key hashing.

/// FNV-1a 64-bit hash, used for bucket selection and fast key comparison.
///
/// # Examples
///
/// ```
/// use kvstore::fnv1a_64;
///
/// assert_ne!(fnv1a_64(b"a"), fnv1a_64(b"b"));
/// assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
/// ```
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::collections::HashSet;
        let hashes: HashSet<u64> = (0..10_000u32)
            .map(|i| fnv1a_64(format!("user{i}").as_bytes()))
            .collect();
        assert_eq!(hashes.len(), 10_000, "no collisions in a small keyspace");
    }
}
