//! The persistent chained hash table.

use pheap::{PHeap, PPtr, MAX_ALLOC};
use viyojit::NvHeap;

use crate::index::SkipIndex;
use crate::{fnv1a_64, KvError};

/// Identifies a formatted store ("REDISNVM" in spirit).
const STORE_MAGIC: u64 = 0x5245_4449_534e_564d;

/// Meta block field offsets.
const META_MAGIC: u64 = 0;
const META_BUCKETS: u64 = 8;
const META_SEG_BUCKETS: u64 = 16;
const META_COUNT: u64 = 24;
const META_DIR: u64 = 32;
const META_STAMP: u64 = 40;
/// Head of the persistent skip-list index ordering all keys (enables
/// `scan`, the paper's future-work cross-key capability).
const META_INDEX: u64 = 48;
const META_BYTES: usize = 56;

/// Entry header layout, mirroring Redis's split between the small object
/// header (dictEntry/robj: chain pointer, hash, lengths, LRU stamp, value
/// pointer) and the separately-allocated value blob (SDS string). Headers
/// are small, so many pack into each page; values get their own
/// allocations. This is why read-heavy workloads dirty far fewer pages
/// than write-heavy ones even though reads update the LRU stamp.
const NODE_NEXT: u64 = 0;
const NODE_HASH: u64 = 8;
const NODE_KEY_LEN: u64 = 16;
const NODE_VAL_LEN: u64 = 20;
const NODE_STAMP: u64 = 24;
const NODE_VAL_PTR: u64 = 32;
/// Expiration time (0 = never) — Redis dicts keep TTLs per key.
const NODE_EXPIRE: u64 = 40;
/// Object flags + encoding + refcount, as in Redis's robj.
const NODE_FLAGS: u64 = 48;
/// Reserved metadata area. Redis spends ~100-130 B of heap metadata per
/// key (dictEntry, robj, SDS header, expires-dict entry); colocating the
/// equivalent here keeps the per-key metadata *footprint* faithful, which
/// is what determines how many pages the read path's LRU stamps dirty.
const NODE_RESERVED: u64 = 56;
const NODE_HEADER: usize = 128;

/// A batch of `(key, value)` pairs returned by [`KvStore::scan`].
pub type ScanResults = Vec<(Vec<u8>, Vec<u8>)>;

/// Buckets per directory segment (one segment = one heap allocation).
const SEG_BUCKETS: u64 = 4096;

/// Store statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvStats {
    /// Live entries.
    pub entries: u64,
    /// Hash buckets.
    pub buckets: u64,
    /// Monotonic operation stamp (the Redis-style LRU clock).
    pub stamp: u64,
}

/// A Redis-like persistent key-value store. See the [crate docs](crate).
#[derive(Debug)]
pub struct KvStore<H> {
    heap: PHeap<H>,
    meta: PPtr,
    dir: PPtr,
    index: SkipIndex,
    num_buckets: u64,
    seg_buckets: u64,
}

impl<H: NvHeap> KvStore<H> {
    /// Formats a new store with `buckets` hash buckets (rounded up to a
    /// power of two) in root slot 0 of `heap`.
    ///
    /// # Errors
    ///
    /// Propagates heap exhaustion; callers should size the region for
    /// `buckets * 8` bytes of table plus their data.
    pub fn create(mut heap: PHeap<H>, buckets: u64) -> Result<Self, KvError> {
        let num_buckets = buckets.max(1).next_power_of_two();
        let seg_buckets = num_buckets.min(SEG_BUCKETS);
        let num_segments = num_buckets / seg_buckets;

        let meta = heap.alloc(META_BYTES)?;
        let dir = heap.alloc((num_segments * 8) as usize)?;
        // Zero the directory, then allocate + zero each bucket segment.
        heap.write(dir, 0, &vec![0u8; (num_segments * 8) as usize])?;
        for s in 0..num_segments {
            let seg = heap.alloc((seg_buckets * 8) as usize)?;
            heap.write(seg, 0, &vec![0u8; (seg_buckets * 8) as usize])?;
            heap.write(dir, s * 8, &seg.offset().to_le_bytes())?;
        }
        let index = SkipIndex::create(&mut heap)?;
        let mut this = KvStore {
            heap,
            meta,
            dir,
            index,
            num_buckets,
            seg_buckets,
        };
        this.put_meta(META_MAGIC, STORE_MAGIC)?;
        this.put_meta(META_BUCKETS, num_buckets)?;
        this.put_meta(META_SEG_BUCKETS, seg_buckets)?;
        this.put_meta(META_COUNT, 0)?;
        this.put_meta(META_DIR, dir.offset())?;
        this.put_meta(META_STAMP, 0)?;
        this.put_meta(META_INDEX, this.index.head().offset())?;
        this.heap.set_root(0, Some(meta))?;
        Ok(this)
    }

    /// Reopens the store in `heap`'s root slot 0 — the warm-cache restart
    /// path after a power cycle.
    ///
    /// # Errors
    ///
    /// [`KvError::NotAStore`] if root slot 0 is empty or the magic does
    /// not verify.
    pub fn open(mut heap: PHeap<H>) -> Result<Self, KvError> {
        let meta = heap.root(0)?.ok_or(KvError::NotAStore)?;
        let mut buf = [0u8; 8];
        heap.read(meta, META_MAGIC, &mut buf)?;
        if u64::from_le_bytes(buf) != STORE_MAGIC {
            return Err(KvError::NotAStore);
        }
        heap.read(meta, META_BUCKETS, &mut buf)?;
        let num_buckets = u64::from_le_bytes(buf);
        heap.read(meta, META_SEG_BUCKETS, &mut buf)?;
        let seg_buckets = u64::from_le_bytes(buf);
        heap.read(meta, META_DIR, &mut buf)?;
        let dir = PPtr::from_offset(u64::from_le_bytes(buf));
        heap.read(meta, META_INDEX, &mut buf)?;
        let index = SkipIndex::open(PPtr::from_offset(u64::from_le_bytes(buf)));
        Ok(KvStore {
            heap,
            meta,
            dir,
            index,
            num_buckets,
            seg_buckets,
        })
    }

    /// Shared access to the persistent heap.
    pub fn heap(&self) -> &PHeap<H> {
        &self.heap
    }

    /// Exclusive access to the persistent heap (and through it the
    /// NV-DRAM layer).
    pub fn heap_mut(&mut self) -> &mut PHeap<H> {
        &mut self.heap
    }

    /// Consumes the store, returning the heap.
    pub fn into_heap(self) -> PHeap<H> {
        self.heap
    }

    fn put_meta(&mut self, field: u64, value: u64) -> Result<(), KvError> {
        self.heap.write(self.meta, field, &value.to_le_bytes())?;
        Ok(())
    }

    fn get_meta(&mut self, field: u64) -> Result<u64, KvError> {
        let mut buf = [0u8; 8];
        self.heap.read(self.meta, field, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn next_stamp(&mut self) -> Result<u64, KvError> {
        // The Redis-style LRU clock: bumped on every operation, persisted
        // in the meta block — metadata write traffic even for reads.
        let stamp = self.get_meta(META_STAMP)? + 1;
        self.put_meta(META_STAMP, stamp)?;
        Ok(stamp)
    }

    /// `(segment ptr, byte offset of the bucket head within the segment)`.
    fn bucket_slot(&mut self, hash: u64) -> Result<(PPtr, u64), KvError> {
        let bucket = hash & (self.num_buckets - 1);
        let seg_idx = bucket / self.seg_buckets;
        let within = bucket % self.seg_buckets;
        let mut buf = [0u8; 8];
        self.heap.read(self.dir, seg_idx * 8, &mut buf)?;
        Ok((PPtr::from_offset(u64::from_le_bytes(buf)), within * 8))
    }

    fn node_u64(&mut self, node: PPtr, field: u64) -> Result<u64, KvError> {
        let mut buf = [0u8; 8];
        self.heap.read(node, field, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn node_u32(&mut self, node: PPtr, field: u64) -> Result<u32, KvError> {
        let mut buf = [0u8; 4];
        self.heap.read(node, field, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    fn node_key(&mut self, node: PPtr) -> Result<Vec<u8>, KvError> {
        let klen = self.node_u32(node, NODE_KEY_LEN)? as usize;
        let mut key = vec![0u8; klen];
        self.heap.read(node, NODE_HEADER as u64, &mut key)?;
        Ok(key)
    }

    /// Finds the node holding `key`, returning `(predecessor, node)` where
    /// the predecessor is `None` for chain heads.
    fn find(&mut self, hash: u64, key: &[u8]) -> Result<Option<(Option<PPtr>, PPtr)>, KvError> {
        let (seg, slot) = self.bucket_slot(hash)?;
        let mut buf = [0u8; 8];
        self.heap.read(seg, slot, &mut buf)?;
        let mut cur = u64::from_le_bytes(buf);
        let mut prev: Option<PPtr> = None;
        while cur != 0 {
            let node = PPtr::from_offset(cur);
            if self.node_u64(node, NODE_HASH)? == hash && self.node_key(node)? == key {
                return Ok(Some((prev, node)));
            }
            prev = Some(node);
            cur = self.node_u64(node, NODE_NEXT)?;
        }
        Ok(None)
    }

    #[allow(clippy::too_many_arguments)] // one serializer for the whole header layout
    fn write_header(
        &mut self,
        node: PPtr,
        next: u64,
        hash: u64,
        key: &[u8],
        val_len: usize,
        val_ptr: PPtr,
        stamp: u64,
    ) -> Result<(), KvError> {
        let mut image = Vec::with_capacity(NODE_HEADER + key.len());
        image.extend_from_slice(&next.to_le_bytes());
        image.extend_from_slice(&hash.to_le_bytes());
        image.extend_from_slice(&(key.len() as u32).to_le_bytes());
        image.extend_from_slice(&(val_len as u32).to_le_bytes());
        image.extend_from_slice(&stamp.to_le_bytes());
        image.extend_from_slice(&val_ptr.offset().to_le_bytes());
        debug_assert_eq!(image.len() as u64, NODE_EXPIRE);
        image.extend_from_slice(&0u64.to_le_bytes()); // expire: never
        debug_assert_eq!(image.len() as u64, NODE_FLAGS);
        image.extend_from_slice(&0u64.to_le_bytes());
        debug_assert_eq!(image.len() as u64, NODE_RESERVED);
        image.resize(NODE_HEADER, 0);
        image.extend_from_slice(key);
        self.heap.write(node, 0, &image)?;
        Ok(())
    }

    /// Inserts or updates `key`. Updates overwrite the value allocation in
    /// place when the new value fits its size class; otherwise the value
    /// blob is reallocated (like Redis's SDS reallocation) and the header
    /// repointed.
    ///
    /// # Errors
    ///
    /// [`KvError::ValueTooLarge`] when the key or value exceed one
    /// allocation; heap exhaustion surfaces as [`KvError::Heap`].
    pub fn set(&mut self, key: &[u8], value: &[u8]) -> Result<(), KvError> {
        if key.len() > u32::MAX as usize {
            return Err(KvError::KeyTooLarge { len: key.len() });
        }
        if NODE_HEADER + key.len() > MAX_ALLOC || value.len() > MAX_ALLOC || value.is_empty() {
            return Err(KvError::ValueTooLarge {
                len: NODE_HEADER + key.len() + value.len(),
            });
        }
        let hash = fnv1a_64(key);
        let stamp = self.next_stamp()?;

        if let Some((_, node)) = self.find(hash, key)? {
            let val_ptr = PPtr::from_offset(self.node_u64(node, NODE_VAL_PTR)?);
            if value.len() <= self.heap.usable_size(val_ptr)? {
                // In-place value overwrite; header gets length + stamp.
                self.heap.write(val_ptr, 0, value)?;
            } else {
                // SDS-style reallocation of the value blob.
                let fresh = self.heap.alloc(value.len())?;
                self.heap.write(fresh, 0, value)?;
                self.heap
                    .write(node, NODE_VAL_PTR, &fresh.offset().to_le_bytes())?;
                self.heap.free(val_ptr)?;
            }
            self.heap
                .write(node, NODE_VAL_LEN, &(value.len() as u32).to_le_bytes())?;
            self.heap.write(node, NODE_STAMP, &stamp.to_le_bytes())?;
            return Ok(());
        }

        // Fresh insert at the chain head: value blob first, then header.
        let (seg, slot) = self.bucket_slot(hash)?;
        let mut buf = [0u8; 8];
        self.heap.read(seg, slot, &mut buf)?;
        let head = u64::from_le_bytes(buf);
        let val_ptr = self.heap.alloc(value.len())?;
        self.heap.write(val_ptr, 0, value)?;
        let node = self.heap.alloc(NODE_HEADER + key.len())?;
        self.write_header(node, head, hash, key, value.len(), val_ptr, stamp)?;
        self.heap.write(seg, slot, &node.offset().to_le_bytes())?;
        let index = self.index;
        index.insert(&mut self.heap, key, node)?;
        let count = self.get_meta(META_COUNT)?;
        self.put_meta(META_COUNT, count + 1)?;
        Ok(())
    }

    /// Looks up `key`. Like Redis, a hit updates the entry's LRU stamp —
    /// a metadata *write* on the read path, landing on the densely-packed
    /// header pages rather than the value blobs.
    ///
    /// # Errors
    ///
    /// Heap failures surface as [`KvError::Heap`].
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, KvError> {
        let hash = fnv1a_64(key);
        let stamp = self.next_stamp()?;
        let Some((_, node)) = self.find(hash, key)? else {
            return Ok(None);
        };
        self.heap.write(node, NODE_STAMP, &stamp.to_le_bytes())?;
        let vlen = self.node_u32(node, NODE_VAL_LEN)? as usize;
        let val_ptr = PPtr::from_offset(self.node_u64(node, NODE_VAL_PTR)?);
        let mut value = vec![0u8; vlen];
        self.heap.read(val_ptr, 0, &mut value)?;
        Ok(Some(value))
    }

    /// Removes `key`, returning whether it was present.
    ///
    /// # Errors
    ///
    /// Heap failures surface as [`KvError::Heap`].
    pub fn delete(&mut self, key: &[u8]) -> Result<bool, KvError> {
        let hash = fnv1a_64(key);
        self.next_stamp()?;
        let Some((prev, node)) = self.find(hash, key)? else {
            return Ok(false);
        };
        let next = self.node_u64(node, NODE_NEXT)?;
        match prev {
            Some(p) => self.heap.write(p, NODE_NEXT, &next.to_le_bytes())?,
            None => {
                let (seg, slot) = self.bucket_slot(hash)?;
                self.heap.write(seg, slot, &next.to_le_bytes())?;
            }
        }
        let val_ptr = PPtr::from_offset(self.node_u64(node, NODE_VAL_PTR)?);
        let index = self.index;
        index.remove(&mut self.heap, key)?;
        self.heap.free(val_ptr)?;
        self.heap.free(node)?;
        let count = self.get_meta(META_COUNT)?;
        self.put_meta(META_COUNT, count - 1)?;
        Ok(true)
    }

    /// Range scan: up to `limit` entries with keys `>= start`, in key
    /// order — YCSB-E's operation, and the cross-key capability the paper
    /// defers to future work. Like `get`, each visited entry's LRU stamp
    /// is refreshed.
    ///
    /// # Errors
    ///
    /// Heap failures surface as [`KvError::Heap`].
    pub fn scan(&mut self, start: &[u8], limit: usize) -> Result<ScanResults, KvError> {
        let stamp = self.next_stamp()?;
        let index = self.index;
        let hits = index.scan_from(&mut self.heap, start, limit)?;
        let mut out = Vec::with_capacity(hits.len());
        for (key, node) in hits {
            self.heap.write(node, NODE_STAMP, &stamp.to_le_bytes())?;
            let vlen = self.node_u32(node, NODE_VAL_LEN)? as usize;
            let val_ptr = PPtr::from_offset(self.node_u64(node, NODE_VAL_PTR)?);
            let mut value = vec![0u8; vlen];
            self.heap.read(val_ptr, 0, &mut value)?;
            out.push((key, value));
        }
        Ok(out)
    }

    /// Number of live entries.
    ///
    /// # Errors
    ///
    /// Heap failures surface as [`KvError::Heap`].
    pub fn len(&mut self) -> Result<u64, KvError> {
        self.get_meta(META_COUNT)
    }

    /// Walks the ordered index asserting key order and agreement with the
    /// entry count — a recovery audit.
    ///
    /// # Errors
    ///
    /// Heap failures surface as [`KvError::Heap`].
    ///
    /// # Panics
    ///
    /// Panics if the index is out of order.
    pub fn audit_index(&mut self) -> Result<u64, KvError> {
        let index = self.index;
        let indexed = index.audit(&mut self.heap)?;
        let count = self.get_meta(META_COUNT)?;
        assert_eq!(indexed, count, "index entries diverge from the hash table");
        Ok(indexed)
    }

    /// `true` if the store holds no entries.
    ///
    /// # Errors
    ///
    /// Heap failures surface as [`KvError::Heap`].
    pub fn is_empty(&mut self) -> Result<bool, KvError> {
        Ok(self.len()? == 0)
    }

    /// Store statistics.
    ///
    /// # Errors
    ///
    /// Heap failures surface as [`KvError::Heap`].
    pub fn stats(&mut self) -> Result<KvStats, KvError> {
        Ok(KvStats {
            entries: self.get_meta(META_COUNT)?,
            buckets: self.num_buckets,
            stamp: self.get_meta(META_STAMP)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::{Clock, CostModel};
    use ssd_sim::SsdConfig;
    use viyojit::{NvdramBaseline, Viyojit, ViyojitConfig};

    fn store(pages: usize, buckets: u64) -> KvStore<NvdramBaseline> {
        let nv = NvdramBaseline::new(pages, Clock::new(), CostModel::free(), SsdConfig::instant());
        let heap = PHeap::format(nv, (pages as u64 - 2) * 4096).unwrap();
        KvStore::create(heap, buckets).unwrap()
    }

    #[test]
    fn set_get_delete_round_trip() {
        let mut kv = store(64, 16);
        assert_eq!(kv.get(b"missing").unwrap(), None);
        kv.set(b"k", b"v1").unwrap();
        assert_eq!(kv.get(b"k").unwrap().as_deref(), Some(&b"v1"[..]));
        kv.set(b"k", b"v2").unwrap();
        assert_eq!(kv.get(b"k").unwrap().as_deref(), Some(&b"v2"[..]));
        assert!(kv.delete(b"k").unwrap());
        assert!(!kv.delete(b"k").unwrap());
        assert_eq!(kv.get(b"k").unwrap(), None);
    }

    #[test]
    fn len_tracks_inserts_and_deletes() {
        let mut kv = store(64, 16);
        for i in 0..20u32 {
            kv.set(format!("key{i}").as_bytes(), b"x").unwrap();
        }
        assert_eq!(kv.len().unwrap(), 20);
        kv.set(b"key3", b"update, not insert").unwrap();
        assert_eq!(kv.len().unwrap(), 20);
        kv.delete(b"key3").unwrap();
        assert_eq!(kv.len().unwrap(), 19);
    }

    #[test]
    fn chains_survive_collisions() {
        // 1 bucket: everything chains.
        let mut kv = store(64, 1);
        for i in 0..30u32 {
            kv.set(format!("k{i}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        for i in 0..30u32 {
            assert_eq!(
                kv.get(format!("k{i}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "key {i}"
            );
        }
        // Delete middle-of-chain entries.
        for i in (0..30u32).step_by(3) {
            assert!(kv.delete(format!("k{i}").as_bytes()).unwrap());
        }
        for i in 0..30u32 {
            let expect = (i % 3 != 0).then(|| format!("v{i}").into_bytes());
            assert_eq!(kv.get(format!("k{i}").as_bytes()).unwrap(), expect);
        }
    }

    #[test]
    fn growing_updates_relocate_nodes() {
        let mut kv = store(128, 8);
        kv.set(b"grow", b"tiny").unwrap();
        let big = vec![7u8; 2000];
        kv.set(b"grow", &big).unwrap();
        assert_eq!(kv.get(b"grow").unwrap().as_deref(), Some(&big[..]));
        // Shrink back; in-place path.
        kv.set(b"grow", b"small again").unwrap();
        assert_eq!(
            kv.get(b"grow").unwrap().as_deref(),
            Some(&b"small again"[..])
        );
        assert_eq!(kv.len().unwrap(), 1);
    }

    #[test]
    fn reads_advance_the_lru_stamp() {
        let mut kv = store(64, 16);
        kv.set(b"a", b"1").unwrap();
        let before = kv.stats().unwrap().stamp;
        kv.get(b"a").unwrap();
        kv.get(b"nope").unwrap();
        let after = kv.stats().unwrap().stamp;
        assert_eq!(after, before + 2, "reads must bump the metadata clock");
    }

    #[test]
    fn oversized_entries_are_rejected() {
        let mut kv = store(64, 4);
        let huge = vec![0u8; MAX_ALLOC + 1];
        assert!(matches!(
            kv.set(b"k", &huge),
            Err(KvError::ValueTooLarge { .. })
        ));
        assert!(matches!(
            kv.set(b"k", b""),
            Err(KvError::ValueTooLarge { .. })
        ));
    }

    #[test]
    fn store_survives_power_cycle_as_warm_cache() {
        let nv = Viyojit::new(
            128,
            ViyojitConfig::with_budget_pages(8),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let heap = PHeap::format(nv, 100 * 4096).unwrap();
        let mut kv = KvStore::create(heap, 64).unwrap();
        for i in 0..50u32 {
            kv.set(format!("user{i}").as_bytes(), format!("data{i}").as_bytes())
                .unwrap();
        }
        let region = kv.heap().region();

        // Power cycle.
        let mut nv = kv.into_heap().into_inner();
        let report = nv.power_failure();
        assert!(report.dirty_pages <= 8);
        nv.recover();

        // Warm-cache restart: all data already present.
        let heap = PHeap::open(nv, region).unwrap();
        let mut kv = KvStore::open(heap).unwrap();
        assert_eq!(kv.len().unwrap(), 50);
        for i in 0..50u32 {
            assert_eq!(
                kv.get(format!("user{i}").as_bytes()).unwrap(),
                Some(format!("data{i}").into_bytes()),
                "entry {i} lost in the power cycle"
            );
        }
        // And the store continues to serve writes.
        kv.set(b"post-recovery", b"yes").unwrap();
        assert_eq!(
            kv.get(b"post-recovery").unwrap().as_deref(),
            Some(&b"yes"[..])
        );
    }

    #[test]
    fn scan_returns_key_ordered_ranges() {
        let mut kv = store(128, 16);
        for i in [5u32, 1, 9, 3, 7, 2, 8, 4, 6, 0] {
            kv.set(
                format!("key{i:02}").as_bytes(),
                format!("val{i}").as_bytes(),
            )
            .unwrap();
        }
        let hits = kv.scan(b"key03", 4).unwrap();
        let keys: Vec<String> = hits
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, ["key03", "key04", "key05", "key06"]);
        assert_eq!(hits[0].1, b"val3");
        // Scans past the end return what exists.
        assert_eq!(kv.scan(b"key09", 10).unwrap().len(), 1);
        assert_eq!(kv.scan(b"zzz", 10).unwrap().len(), 0);
    }

    #[test]
    fn scan_reflects_updates_and_deletes() {
        let mut kv = store(128, 16);
        for i in 0..10u32 {
            kv.set(format!("s{i}").as_bytes(), b"old").unwrap();
        }
        kv.set(b"s4", b"new-value").unwrap();
        kv.delete(b"s5").unwrap();
        let hits = kv.scan(b"s4", 2).unwrap();
        assert_eq!(hits[0].1, b"new-value");
        assert_eq!(hits[1].0, b"s6", "deleted key must not appear in scans");
    }

    #[test]
    fn scans_survive_power_cycles() {
        let nv = Viyojit::new(
            256,
            ViyojitConfig::with_budget_pages(8),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let heap = PHeap::format(nv, 200 * 4096).unwrap();
        let mut kv = KvStore::create(heap, 64).unwrap();
        for i in 0..30u32 {
            kv.set(format!("p{i:02}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        let region = kv.heap().region();
        let mut nv = kv.into_heap().into_inner();
        nv.power_failure();
        nv.recover();
        let mut kv = KvStore::open(PHeap::open(nv, region).unwrap()).unwrap();
        let hits = kv.scan(b"p10", 5).unwrap();
        let keys: Vec<String> = hits
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, ["p10", "p11", "p12", "p13", "p14"]);
    }

    #[test]
    fn open_rejects_foreign_heaps() {
        let nv = NvdramBaseline::new(16, Clock::new(), CostModel::free(), SsdConfig::instant());
        let heap = PHeap::format(nv, 10 * 4096).unwrap();
        assert!(matches!(KvStore::open(heap), Err(KvError::NotAStore)));
    }
}
