//! Property tests of the persistent allocator: model-based equivalence
//! under random alloc/free/write sequences, including across power cycles.

use std::collections::HashMap;

use pheap::{PHeap, PHeapError, PPtr, MAX_ALLOC};
use proptest::prelude::*;
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use viyojit::{Viyojit, ViyojitConfig};

#[derive(Debug, Clone)]
enum Op {
    Alloc {
        len: usize,
        fill: u8,
    },
    /// Free the `nth % live` live allocation.
    Free {
        nth: usize,
    },
    /// Overwrite the `nth % live` live allocation with `fill`.
    Rewrite {
        nth: usize,
        fill: u8,
    },
    PowerCycle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (1..2048usize, any::<u8>()).prop_map(|(len, fill)| Op::Alloc { len, fill }),
        2 => any::<usize>().prop_map(|nth| Op::Free { nth }),
        3 => (any::<usize>(), any::<u8>()).prop_map(|(nth, fill)| Op::Rewrite { nth, fill }),
        1 => Just(Op::PowerCycle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn allocator_matches_model_across_power_cycles(
        ops in prop::collection::vec(op_strategy(), 1..80)
    ) {
        let nv = Viyojit::new(
            96,
            ViyojitConfig::with_budget_pages(8),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let mut h = PHeap::format(nv, 80 * 4096).unwrap();
        let region = h.region();
        // Model: live pointer -> (requested len, fill byte).
        let mut model: HashMap<PPtr, (usize, u8)> = HashMap::new();
        let mut order: Vec<PPtr> = Vec::new();

        for op in &ops {
            match *op {
                Op::Alloc { len, fill } => match h.alloc(len) {
                    Ok(p) => {
                        h.write(p, 0, &vec![fill; len]).unwrap();
                        prop_assert!(model.insert(p, (len, fill)).is_none(),
                            "allocator returned a live pointer twice");
                        order.push(p);
                    }
                    Err(PHeapError::OutOfMemory) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("alloc: {e}"))),
                },
                Op::Free { nth } => {
                    if order.is_empty() { continue; }
                    let p = order.swap_remove(nth % order.len());
                    h.free(p).unwrap();
                    model.remove(&p);
                }
                Op::Rewrite { nth, fill } => {
                    if order.is_empty() { continue; }
                    let p = order[nth % order.len()];
                    let (len, _) = model[&p];
                    h.write(p, 0, &vec![fill; len]).unwrap();
                    model.insert(p, (len, fill));
                }
                Op::PowerCycle => {
                    let mut nv = h.into_inner();
                    nv.power_failure();
                    nv.recover();
                    h = PHeap::open(nv, region).unwrap();
                }
            }
            // Every live allocation still reads back exactly.
            for (&p, &(len, fill)) in &model {
                let mut buf = vec![0u8; len];
                h.read(p, 0, &mut buf).unwrap();
                prop_assert!(buf.iter().all(|&b| b == fill),
                    "allocation {p} corrupted (expected fill {fill})");
            }
        }

        let stats = h.stats().unwrap();
        prop_assert_eq!(stats.live_allocs, model.len() as u64);
    }

    #[test]
    fn size_class_bounds_every_request(len in 1..=MAX_ALLOC) {
        let class = pheap::size_class(len).expect("within max");
        let size = pheap::class_size(class);
        prop_assert!(size >= len, "class too small");
        prop_assert!(size < len.max(16) * 2, "class wastes more than 2x");
    }
}
