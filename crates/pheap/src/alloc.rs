//! The persistent heap allocator.

use std::fmt;

use viyojit::{NvHeap, RegionId};

use crate::error::PHeapError;
use crate::layout::{
    class_size, size_class, ALLOC_FLAG, DATA_START, HEADER_BYTES, MAGIC, NUM_CLASSES, NUM_ROOTS,
    OFF_ALLOC_BYTES, OFF_ALLOC_COUNT, OFF_BUMP, OFF_FREE_HEADS, OFF_MAGIC, OFF_REGION_LEN,
    OFF_ROOTS, OFF_RUN_CURSOR, OFF_RUN_END, OFF_VERSION, RUN_BYTES, VERSION,
};

/// A persistent pointer: the region offset of an allocation's payload.
///
/// `PPtr` is stable across power cycles — persistent data structures store
/// `PPtr`s inside other allocations and in the root directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PPtr(u64);

impl PPtr {
    /// The raw region offset (for storing inside persistent structures).
    pub const fn offset(self) -> u64 {
        self.0
    }

    /// Reconstructs a pointer from a stored offset. The pointer is
    /// validated on first use.
    pub const fn from_offset(offset: u64) -> Self {
        PPtr(offset)
    }
}

impl fmt::Display for PPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pptr@{:#x}", self.0)
    }
}

/// Allocator statistics (read from the superblock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PHeapStats {
    /// Live allocations.
    pub live_allocs: u64,
    /// Payload bytes in live allocations (class-rounded).
    pub live_bytes: u64,
    /// Next never-allocated offset (high-water mark).
    pub bump: u64,
    /// Total region bytes.
    pub region_len: u64,
}

/// A persistent size-class heap over one NV-DRAM region.
///
/// See the [crate-level docs](crate) for design and an example.
#[derive(Debug)]
pub struct PHeap<H> {
    heap: H,
    region: RegionId,
}

impl<H: NvHeap> PHeap<H> {
    /// Maps a fresh region of `bytes` bytes on `heap` and formats a heap
    /// in it.
    ///
    /// # Errors
    ///
    /// Propagates mapping failures; [`PHeapError::OutOfMemory`] if `bytes`
    /// cannot hold even the superblock.
    pub fn format(mut heap: H, bytes: u64) -> Result<Self, PHeapError> {
        if bytes < DATA_START + 64 {
            return Err(PHeapError::OutOfMemory);
        }
        let region = heap.map(bytes)?;
        let mut this = PHeap { heap, region };
        this.put_u64(OFF_MAGIC, MAGIC)?;
        this.put_u64(OFF_VERSION, VERSION)?;
        this.put_u64(OFF_REGION_LEN, bytes)?;
        this.put_u64(OFF_BUMP, DATA_START)?;
        this.put_u64(OFF_ALLOC_COUNT, 0)?;
        this.put_u64(OFF_ALLOC_BYTES, 0)?;
        for c in 0..NUM_CLASSES {
            this.put_u64(OFF_FREE_HEADS + (c as u64) * 8, 0)?;
            this.put_u64(OFF_RUN_CURSOR + (c as u64) * 8, 0)?;
            this.put_u64(OFF_RUN_END + (c as u64) * 8, 0)?;
        }
        for r in 0..NUM_ROOTS {
            this.put_u64(OFF_ROOTS + (r as u64) * 8, 0)?;
        }
        Ok(this)
    }

    /// Opens an already-formatted heap (after recovery, or a second
    /// handle). Verifies the superblock.
    ///
    /// # Errors
    ///
    /// [`PHeapError::BadMagic`] if the region was never formatted.
    pub fn open(mut heap: H, region: RegionId) -> Result<Self, PHeapError> {
        let mut buf = [0u8; 8];
        heap.read(region, OFF_MAGIC, &mut buf)?;
        if u64::from_le_bytes(buf) != MAGIC {
            return Err(PHeapError::BadMagic);
        }
        heap.read(region, OFF_VERSION, &mut buf)?;
        if u64::from_le_bytes(buf) != VERSION {
            return Err(PHeapError::BadMagic);
        }
        Ok(PHeap { heap, region })
    }

    /// The region this heap lives in.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Shared access to the underlying NV-DRAM layer.
    pub fn heap(&self) -> &H {
        &self.heap
    }

    /// Exclusive access to the underlying NV-DRAM layer (power-failure
    /// injection, statistics).
    pub fn heap_mut(&mut self) -> &mut H {
        &mut self.heap
    }

    /// Consumes the heap handle, returning the NV-DRAM layer.
    pub fn into_inner(self) -> H {
        self.heap
    }

    fn get_u64(&mut self, offset: u64) -> Result<u64, PHeapError> {
        let mut buf = [0u8; 8];
        self.heap.read(self.region, offset, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn put_u64(&mut self, offset: u64, value: u64) -> Result<(), PHeapError> {
        self.heap.write(self.region, offset, &value.to_le_bytes())?;
        Ok(())
    }

    fn header_of(&mut self, ptr: PPtr) -> Result<(usize, bool), PHeapError> {
        if ptr.0 < DATA_START + HEADER_BYTES {
            return Err(PHeapError::BadPointer);
        }
        let header = self.get_u64(ptr.0 - HEADER_BYTES)?;
        let class = (header & 0xFF) as usize;
        if class >= NUM_CLASSES {
            return Err(PHeapError::BadPointer);
        }
        Ok((class, header & ALLOC_FLAG != 0))
    }

    /// Allocates `len` payload bytes, reusing a freed block of the same
    /// size class when one exists.
    ///
    /// # Errors
    ///
    /// [`PHeapError::TooLarge`] beyond [`MAX_ALLOC`](crate::MAX_ALLOC);
    /// [`PHeapError::OutOfMemory`] when the region is exhausted.
    pub fn alloc(&mut self, len: usize) -> Result<PPtr, PHeapError> {
        let class = size_class(len).ok_or(PHeapError::TooLarge { requested: len })?;
        let head_off = OFF_FREE_HEADS + (class as u64) * 8;
        let head = self.get_u64(head_off)?;
        let payload = if head != 0 {
            // Pop the free list: the freed block stores the next pointer in
            // its first payload word.
            let next = self.get_u64(head)?;
            self.put_u64(head_off, next)?;
            head
        } else {
            // Slab path: slice the next block off this class's current
            // run, carving a fresh page-aligned run from the wilderness
            // when the run is exhausted. Per-class runs keep small
            // metadata blocks densely packed, away from large blobs.
            let block = HEADER_BYTES + class_size(class) as u64;
            let cursor_off = OFF_RUN_CURSOR + (class as u64) * 8;
            let end_off = OFF_RUN_END + (class as u64) * 8;
            let mut cursor = self.get_u64(cursor_off)?;
            let end = self.get_u64(end_off)?;
            if cursor == 0 || cursor + block > end {
                let run_bytes = if block <= RUN_BYTES {
                    RUN_BYTES
                } else {
                    block.div_ceil(4096) * 4096
                };
                let bump = self.get_u64(OFF_BUMP)?;
                let region_len = self.get_u64(OFF_REGION_LEN)?;
                if bump + run_bytes > region_len {
                    return Err(PHeapError::OutOfMemory);
                }
                self.put_u64(OFF_BUMP, bump + run_bytes)?;
                self.put_u64(end_off, bump + run_bytes)?;
                cursor = bump;
            }
            self.put_u64(cursor_off, cursor + block)?;
            cursor + HEADER_BYTES
        };
        self.put_u64(payload - HEADER_BYTES, class as u64 | ALLOC_FLAG)?;
        let count = self.get_u64(OFF_ALLOC_COUNT)?;
        self.put_u64(OFF_ALLOC_COUNT, count + 1)?;
        let bytes = self.get_u64(OFF_ALLOC_BYTES)?;
        self.put_u64(OFF_ALLOC_BYTES, bytes + class_size(class) as u64)?;
        Ok(PPtr(payload))
    }

    /// Frees an allocation, making its block reusable by the same class.
    ///
    /// # Errors
    ///
    /// [`PHeapError::BadPointer`] for wild pointers and double frees.
    pub fn free(&mut self, ptr: PPtr) -> Result<(), PHeapError> {
        let (class, allocated) = self.header_of(ptr)?;
        if !allocated {
            return Err(PHeapError::BadPointer);
        }
        self.put_u64(ptr.0 - HEADER_BYTES, class as u64)?; // clear ALLOC_FLAG
        let head_off = OFF_FREE_HEADS + (class as u64) * 8;
        let head = self.get_u64(head_off)?;
        self.put_u64(ptr.0, head)?;
        self.put_u64(head_off, ptr.0)?;
        let count = self.get_u64(OFF_ALLOC_COUNT)?;
        self.put_u64(OFF_ALLOC_COUNT, count - 1)?;
        let bytes = self.get_u64(OFF_ALLOC_BYTES)?;
        self.put_u64(OFF_ALLOC_BYTES, bytes - class_size(class) as u64)?;
        Ok(())
    }

    /// The usable payload size of a live allocation (its class size).
    ///
    /// # Errors
    ///
    /// [`PHeapError::BadPointer`] if `ptr` is not a live allocation.
    pub fn usable_size(&mut self, ptr: PPtr) -> Result<usize, PHeapError> {
        let (class, allocated) = self.header_of(ptr)?;
        if !allocated {
            return Err(PHeapError::BadPointer);
        }
        Ok(class_size(class))
    }

    /// Writes `data` at byte `offset` within the allocation.
    ///
    /// # Errors
    ///
    /// [`PHeapError::BadPointer`] / [`PHeapError::OutOfBounds`].
    pub fn write(&mut self, ptr: PPtr, offset: u64, data: &[u8]) -> Result<(), PHeapError> {
        let size = self.usable_size(ptr)? as u64;
        if offset + data.len() as u64 > size {
            return Err(PHeapError::OutOfBounds);
        }
        self.heap.write(self.region, ptr.0 + offset, data)?;
        Ok(())
    }

    /// Reads `buf.len()` bytes at byte `offset` within the allocation.
    ///
    /// # Errors
    ///
    /// [`PHeapError::BadPointer`] / [`PHeapError::OutOfBounds`].
    pub fn read(&mut self, ptr: PPtr, offset: u64, buf: &mut [u8]) -> Result<(), PHeapError> {
        let size = self.usable_size(ptr)? as u64;
        if offset + buf.len() as u64 > size {
            return Err(PHeapError::OutOfBounds);
        }
        self.heap.read(self.region, ptr.0 + offset, buf)?;
        Ok(())
    }

    /// Stores a pointer in root slot `slot` (or clears it with `None`).
    /// Roots are how persistent structures are found again after a power
    /// cycle.
    ///
    /// # Errors
    ///
    /// [`PHeapError::BadPointer`] if `slot >= 16` or the pointer is not a
    /// live allocation.
    pub fn set_root(&mut self, slot: usize, ptr: Option<PPtr>) -> Result<(), PHeapError> {
        if slot >= NUM_ROOTS {
            return Err(PHeapError::BadPointer);
        }
        if let Some(p) = ptr {
            let (_, allocated) = self.header_of(p)?;
            if !allocated {
                return Err(PHeapError::BadPointer);
            }
        }
        self.put_u64(OFF_ROOTS + (slot as u64) * 8, ptr.map_or(0, |p| p.0))
    }

    /// Reads root slot `slot`.
    ///
    /// # Errors
    ///
    /// [`PHeapError::BadPointer`] if `slot >= 16`.
    pub fn root(&mut self, slot: usize) -> Result<Option<PPtr>, PHeapError> {
        if slot >= NUM_ROOTS {
            return Err(PHeapError::BadPointer);
        }
        let raw = self.get_u64(OFF_ROOTS + (slot as u64) * 8)?;
        Ok((raw != 0).then_some(PPtr(raw)))
    }

    /// Current allocator statistics.
    ///
    /// # Errors
    ///
    /// Propagates NV-DRAM access failures.
    pub fn stats(&mut self) -> Result<PHeapStats, PHeapError> {
        Ok(PHeapStats {
            live_allocs: self.get_u64(OFF_ALLOC_COUNT)?,
            live_bytes: self.get_u64(OFF_ALLOC_BYTES)?,
            bump: self.get_u64(OFF_BUMP)?,
            region_len: self.get_u64(OFF_REGION_LEN)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_clock::{Clock, CostModel};
    use ssd_sim::SsdConfig;
    use viyojit::{NvdramBaseline, Viyojit, ViyojitConfig};

    fn pheap_pages(pages: usize) -> PHeap<NvdramBaseline> {
        let nv = NvdramBaseline::new(pages, Clock::new(), CostModel::free(), SsdConfig::instant());
        PHeap::format(nv, (pages as u64 - 1) * 4096).unwrap()
    }

    #[test]
    fn alloc_write_read_round_trips() {
        let mut h = pheap_pages(16);
        let p = h.alloc(50).unwrap();
        h.write(p, 0, b"hello persistent world").unwrap();
        let mut buf = [0u8; 22];
        h.read(p, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello persistent world");
    }

    #[test]
    fn distinct_allocations_do_not_alias() {
        let mut h = pheap_pages(32);
        let ptrs: Vec<PPtr> = (0..20).map(|_| h.alloc(64).unwrap()).collect();
        for (i, &p) in ptrs.iter().enumerate() {
            h.write(p, 0, &[i as u8; 64]).unwrap();
        }
        for (i, &p) in ptrs.iter().enumerate() {
            let mut buf = [0u8; 64];
            h.read(p, 0, &mut buf).unwrap();
            assert_eq!(buf, [i as u8; 64], "allocation {i} was clobbered");
        }
    }

    #[test]
    fn free_makes_blocks_reusable() {
        let mut h = pheap_pages(16);
        let p = h.alloc(100).unwrap();
        h.free(p).unwrap();
        let q = h.alloc(100).unwrap();
        assert_eq!(p, q, "same class should reuse the freed block");
    }

    #[test]
    fn free_lists_are_per_class() {
        let mut h = pheap_pages(16);
        let small = h.alloc(16).unwrap();
        h.free(small).unwrap();
        let big = h.alloc(1000).unwrap();
        assert_ne!(small, big, "a freed 16 B block must not satisfy 1000 B");
    }

    #[test]
    fn double_free_is_detected() {
        let mut h = pheap_pages(16);
        let p = h.alloc(32).unwrap();
        h.free(p).unwrap();
        assert_eq!(h.free(p), Err(PHeapError::BadPointer));
    }

    #[test]
    fn wild_pointers_are_rejected() {
        let mut h = pheap_pages(16);
        assert_eq!(
            h.usable_size(PPtr::from_offset(3)),
            Err(PHeapError::BadPointer)
        );
        assert_eq!(
            h.read(PPtr::from_offset(0), 0, &mut [0u8; 1]),
            Err(PHeapError::BadPointer)
        );
    }

    #[test]
    fn bounds_are_enforced_at_class_size() {
        let mut h = pheap_pages(16);
        let p = h.alloc(20).unwrap(); // class 32
        assert!(h.write(p, 0, &[0u8; 32]).is_ok());
        assert_eq!(h.write(p, 0, &[0u8; 33]), Err(PHeapError::OutOfBounds));
        assert_eq!(h.read(p, 30, &mut [0u8; 3]), Err(PHeapError::OutOfBounds));
    }

    #[test]
    fn oversized_allocations_are_rejected() {
        let mut h = pheap_pages(64);
        assert!(matches!(
            h.alloc(crate::MAX_ALLOC + 1),
            Err(PHeapError::TooLarge { .. })
        ));
        assert!(matches!(h.alloc(0), Err(PHeapError::TooLarge { .. })));
    }

    #[test]
    fn out_of_memory_is_reported_not_corrupted() {
        let mut h = pheap_pages(4); // tiny: superblock + ~3 pages
        let mut live = Vec::new();
        loop {
            match h.alloc(4096) {
                Ok(p) => live.push(p),
                Err(PHeapError::OutOfMemory) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        // Everything allocated before exhaustion still works.
        for (i, &p) in live.iter().enumerate() {
            h.write(p, 0, &[i as u8; 8]).unwrap();
        }
        let stats = h.stats().unwrap();
        assert_eq!(stats.live_allocs, live.len() as u64);
    }

    #[test]
    fn roots_survive_and_validate() {
        let mut h = pheap_pages(16);
        let p = h.alloc(64).unwrap();
        h.set_root(3, Some(p)).unwrap();
        assert_eq!(h.root(3).unwrap(), Some(p));
        h.set_root(3, None).unwrap();
        assert_eq!(h.root(3).unwrap(), None);
        assert_eq!(h.set_root(99, Some(p)), Err(PHeapError::BadPointer));
    }

    #[test]
    fn stats_track_alloc_and_free() {
        let mut h = pheap_pages(16);
        let p = h.alloc(100).unwrap(); // class 128
        let q = h.alloc(16).unwrap();
        let s = h.stats().unwrap();
        assert_eq!(s.live_allocs, 2);
        assert_eq!(s.live_bytes, 128 + 16);
        h.free(p).unwrap();
        h.free(q).unwrap();
        let s = h.stats().unwrap();
        assert_eq!(s.live_allocs, 0);
        assert_eq!(s.live_bytes, 0);
    }

    #[test]
    fn open_rejects_unformatted_regions() {
        let mut nv = NvdramBaseline::new(8, Clock::new(), CostModel::free(), SsdConfig::instant());
        let region = nv.map(8 * 4096).unwrap();
        assert!(matches!(PHeap::open(nv, region), Err(PHeapError::BadMagic)));
    }

    #[test]
    fn heap_survives_power_cycle_on_viyojit() {
        let nv = Viyojit::new(
            32,
            ViyojitConfig::with_budget_pages(4),
            Clock::new(),
            CostModel::free(),
            SsdConfig::instant(),
        );
        let mut h = PHeap::format(nv, 24 * 4096).unwrap();
        let region = h.region();
        let p = h.alloc(200).unwrap();
        h.write(p, 0, b"outlives the power grid").unwrap();
        h.set_root(0, Some(p)).unwrap();

        let mut nv = h.into_inner();
        nv.power_failure();
        nv.recover();

        let mut h = PHeap::open(nv, region).unwrap();
        let p = h.root(0).unwrap().expect("root survives");
        let mut buf = [0u8; 23];
        h.read(p, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"outlives the power grid");
        // The allocator keeps working after recovery.
        let q = h.alloc(64).unwrap();
        h.write(q, 0, &[1; 64]).unwrap();
    }
}
