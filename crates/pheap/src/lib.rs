//! A persistent heap allocator on battery-backed DRAM — the substitute for
//! the Intel PMEM library the paper's modified Redis links against.
//!
//! All allocator state (free lists, bump pointer, root directory, per-block
//! headers) lives *inside* the NV region and is accessed through the
//! [`NvHeap`](viyojit::NvHeap) API, so every metadata update generates real
//! NV-DRAM write traffic — this is why the paper's "read-only" YCSB-C still
//! dirties pages (§6.2: "internally, Redis still performs several store
//! instructions as part of the internal logic for metadata operations").
//!
//! Battery-backed DRAM gives a property true NVM lacks: on power failure
//! the *entire* memory image is flushed, so naive in-place metadata updates
//! are crash-safe by construction — no logging or fence discipline needed.
//! Recovery is [`PHeap::open`]: verify the superblock, pick up where the
//! image left off.
//!
//! # Examples
//!
//! ```
//! use pheap::PHeap;
//! use sim_clock::{Clock, CostModel};
//! use ssd_sim::SsdConfig;
//! use viyojit::{Viyojit, ViyojitConfig};
//!
//! let nv = Viyojit::new(
//!     64,
//!     ViyojitConfig::with_budget_pages(8),
//!     Clock::new(),
//!     CostModel::free(),
//!     SsdConfig::instant(),
//! );
//! let mut heap = PHeap::format(nv, 48 * 4096)?;
//! let p = heap.alloc(100)?;
//! heap.write(p, 0, b"persistent bytes")?;
//! heap.set_root(0, Some(p))?;
//! let mut buf = [0u8; 16];
//! heap.read(p, 0, &mut buf)?;
//! assert_eq!(&buf, b"persistent bytes");
//! # Ok::<(), pheap::PHeapError>(())
//! ```

mod alloc;
mod error;
mod layout;

pub use alloc::{PHeap, PHeapStats, PPtr};
pub use error::PHeapError;
pub use layout::{class_size, size_class, MAX_ALLOC, NUM_CLASSES};
