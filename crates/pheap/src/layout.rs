//! On-NV-DRAM layout of the persistent heap.
//!
//! ```text
//! offset 0 ─┬─ superblock (one page)
//!           │    0  magic
//!           │    8  version
//!           │   16  region length (bytes)
//!           │   24  bump pointer (next unallocated offset)
//!           │   32  live allocation count
//!           │   40  live allocated bytes
//!           │   48  free-list heads, one u64 per size class
//!           │  ...  root directory, 16 u64 slots
//! page 1 ──┴─ data: [8-byte header][payload] blocks
//! ```

/// Identifies a formatted heap. ("VIYOJIT1" in ASCII.)
pub(crate) const MAGIC: u64 = 0x5649_594f_4a49_5431;
/// Layout version.
pub(crate) const VERSION: u64 = 1;

/// Number of size classes: powers of two from 16 B to 64 KiB.
pub const NUM_CLASSES: usize = 13;
/// Smallest class payload size.
pub(crate) const MIN_CLASS: usize = 16;
/// Largest supported allocation (payload bytes).
pub const MAX_ALLOC: usize = MIN_CLASS << (NUM_CLASSES - 1); // 64 KiB

/// Per-block header: low 8 bits = class index, bit 63 = allocated flag.
pub(crate) const HEADER_BYTES: u64 = 8;
pub(crate) const ALLOC_FLAG: u64 = 1 << 63;

/// Superblock field offsets.
pub(crate) const OFF_MAGIC: u64 = 0;
pub(crate) const OFF_VERSION: u64 = 8;
pub(crate) const OFF_REGION_LEN: u64 = 16;
pub(crate) const OFF_BUMP: u64 = 24;
pub(crate) const OFF_ALLOC_COUNT: u64 = 32;
pub(crate) const OFF_ALLOC_BYTES: u64 = 40;
pub(crate) const OFF_FREE_HEADS: u64 = 48;
pub(crate) const OFF_ROOTS: u64 = OFF_FREE_HEADS + (NUM_CLASSES as u64) * 8;
/// Number of named root slots.
pub(crate) const NUM_ROOTS: usize = 16;
/// Per-class slab-run cursors and limits: like jemalloc, each size class
/// carves page-aligned runs from the wilderness and slices them into
/// blocks, so small metadata objects pack densely instead of interleaving
/// with large blobs. (This density is what keeps read-path metadata
/// updates confined to few pages — the Redis behaviour behind the paper's
/// low YCSB-C overhead.)
pub(crate) const OFF_RUN_CURSOR: u64 = OFF_ROOTS + (NUM_ROOTS as u64) * 8;
pub(crate) const OFF_RUN_END: u64 = OFF_RUN_CURSOR + (NUM_CLASSES as u64) * 8;
/// Bytes per slab run for blocks that fit a page (4 pages keeps tail waste
/// under ~6% for the 1 KiB class).
pub(crate) const RUN_BYTES: u64 = 4 * 4096;
/// First data byte (superblock keeps a page to itself).
pub(crate) const DATA_START: u64 = 4096;

/// The size class that fits a payload of `len` bytes, if any.
///
/// # Examples
///
/// ```
/// use pheap::{class_size, size_class};
///
/// assert_eq!(size_class(1), Some(0));
/// assert_eq!(size_class(16), Some(0));
/// assert_eq!(size_class(17), Some(1));
/// assert_eq!(class_size(1), 32);
/// assert_eq!(size_class(usize::MAX), None);
/// ```
pub fn size_class(len: usize) -> Option<usize> {
    if len == 0 || len > MAX_ALLOC {
        return None;
    }
    let needed = len.max(MIN_CLASS).next_power_of_two();
    Some(needed.trailing_zeros() as usize - MIN_CLASS.trailing_zeros() as usize)
}

/// Payload bytes of size class `class`.
///
/// # Panics
///
/// Panics if `class >= NUM_CLASSES`.
pub fn class_size(class: usize) -> usize {
    assert!(class < NUM_CLASSES, "size class {class} out of range");
    MIN_CLASS << class
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_cover_expected_ranges() {
        assert_eq!(size_class(0), None);
        assert_eq!(size_class(15), Some(0));
        assert_eq!(size_class(16), Some(0));
        assert_eq!(size_class(17), Some(1));
        assert_eq!(size_class(MAX_ALLOC), Some(NUM_CLASSES - 1));
        assert_eq!(size_class(MAX_ALLOC + 1), None);
    }

    #[test]
    fn class_size_round_trips_with_size_class() {
        for c in 0..NUM_CLASSES {
            let size = class_size(c);
            assert_eq!(size_class(size), Some(c));
            assert_eq!(
                size_class(size + 1),
                if c + 1 < NUM_CLASSES {
                    Some(c + 1)
                } else {
                    None
                }
            );
        }
    }

    #[test]
    fn superblock_fits_in_one_page() {
        assert!(OFF_RUN_END + (NUM_CLASSES as u64) * 8 <= DATA_START);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn class_size_rejects_bad_class() {
        let _ = class_size(NUM_CLASSES);
    }
}
