//! Error type of the persistent heap.

use std::error::Error;
use std::fmt;

use viyojit::ViyojitError;

/// Why a persistent-heap operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PHeapError {
    /// The requested allocation exceeds [`MAX_ALLOC`](crate::MAX_ALLOC).
    TooLarge {
        /// Bytes requested.
        requested: usize,
    },
    /// The region has no space left for the allocation.
    OutOfMemory,
    /// The pointer does not reference a live allocation (wild pointer,
    /// double free, or misaligned offset).
    BadPointer,
    /// The access exceeds the allocation's size.
    OutOfBounds,
    /// The superblock magic did not verify: the region does not hold a
    /// formatted heap.
    BadMagic,
    /// The underlying NV-DRAM layer failed.
    Heap(ViyojitError),
}

impl fmt::Display for PHeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PHeapError::TooLarge { requested } => {
                write!(
                    f,
                    "allocation of {requested} bytes exceeds the maximum class"
                )
            }
            PHeapError::OutOfMemory => write!(f, "persistent region exhausted"),
            PHeapError::BadPointer => write!(f, "pointer does not reference a live allocation"),
            PHeapError::OutOfBounds => write!(f, "access exceeds the allocation size"),
            PHeapError::BadMagic => write!(f, "region does not contain a formatted heap"),
            PHeapError::Heap(e) => write!(f, "NV-DRAM layer error: {e}"),
        }
    }
}

impl Error for PHeapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PHeapError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ViyojitError> for PHeapError {
    fn from(e: ViyojitError) -> Self {
        PHeapError::Heap(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = [
            PHeapError::TooLarge { requested: 1 },
            PHeapError::OutOfMemory,
            PHeapError::BadPointer,
            PHeapError::OutOfBounds,
            PHeapError::BadMagic,
            PHeapError::Heap(ViyojitError::EmptyMapping),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn heap_errors_chain_their_source() {
        let e = PHeapError::from(ViyojitError::EmptyMapping);
        assert!(Error::source(&e).is_some());
    }
}
