//! Quickstart: battery-backed DRAM with a tenth of the battery.
//!
//! Maps an NV-DRAM region under a small dirty budget, writes through the
//! fault-tracking path, pulls the plug, and proves every byte survived.
//!
//! Run with: `cargo run --release --example quickstart`

use battery_sim::{Battery, BatteryConfig, PowerModel};
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use viyojit::{CsvSink, NvHeap, Telemetry, TelemetryConfig, Viyojit, ViyojitConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A server with 4096 pages (16 MiB) of NV-DRAM, but battery for only
    // 256 pages (1 MiB) of dirty data: 6% of a full-backup provisioning.
    let total_pages = 4096;
    let config = ViyojitConfig::builder(256)
        .total_pages(total_pages as u64)
        .build()?;
    let clock = Clock::new();
    let mut nv = Viyojit::new(
        total_pages,
        config,
        clock.clone(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    );

    // Record virtual-time telemetry; drained to CSV at the end. Telemetry
    // observes the clock but never advances it, so results are identical
    // with or without this line. A small ring keeps just the trace tail.
    let telemetry = Telemetry::with_config(clock, TelemetryConfig { ring_capacity: 12 });
    nv.attach_telemetry(telemetry.clone());

    // mmap-like allocation.
    let region = nv.map(1024 * 4096)?;
    println!("mapped {} bytes of NV-DRAM", nv.region_len(region)?);

    // Write far more data than the budget covers; Viyojit's proactive
    // copier keeps the dirty population bounded throughout.
    for page in 0..1024u64 {
        let payload = vec![(page % 251) as u8; 4096];
        nv.write(region, page * 4096, &payload)?;
        assert!(nv.dirty_count() <= 256);
    }
    println!(
        "wrote 4 MiB; dirty pages now {} (budget {}), {} faults handled, {} pages copied out",
        nv.dirty_count(),
        nv.dirty_budget(),
        nv.stats().faults_handled,
        nv.stats().flushes_completed,
    );

    // Power fails. Only the bounded dirty set needs battery energy.
    let report = nv.power_failure();
    let battery = Battery::new(BatteryConfig::with_capacity_joules(40.0));
    let power = PowerModel::datacenter_server(0.016); // 16 MiB of DRAM
    println!(
        "power failure: {} dirty pages to flush in {}, needing {:.2} J (battery holds {:.2} J usable) -> survives: {}",
        report.dirty_pages,
        report.flush_time,
        report.energy_needed_joules(&power),
        battery.effective_joules(),
        report.survives(&battery, &power),
    );
    assert!(report.survives(&battery, &power));

    // Reboot and audit every byte.
    nv.recover();
    for page in 0..1024u64 {
        let mut buf = vec![0u8; 4096];
        nv.read(region, page * 4096, &mut buf)?;
        assert!(
            buf.iter().all(|&b| b == (page % 251) as u8),
            "page {page} corrupted"
        );
    }
    println!("recovery verified: all 4 MiB intact with ~6% of the battery");

    // Dump the recorded trace tail and metric snapshots as CSV.
    let mut sink = CsvSink::new(std::io::stdout());
    telemetry.drain_into(&mut sink);
    println!(
        "telemetry: {} events recorded ({} dropped by the ring)",
        telemetry.recorded_events(),
        telemetry.dropped_events()
    );
    Ok(())
}
