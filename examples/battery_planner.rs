//! Battery provisioning planner: §3's methodology as a tool.
//!
//! Given a synthetic file-system trace of your workload, measure its
//! write skew and answer the operator's question: *how much battery do I
//! actually need?* — comparing the traditional full-capacity provisioning
//! against a Viyojit dirty budget sized from the observed worst-interval
//! write volume.
//!
//! Run with: `cargo run --release --example battery_planner`

use battery_sim::{DirtyBudget, PowerModel};
use sim_clock::SimDuration;
use trace_analysis::{IntervalWriteStats, WriteSkewAnalysis};
use workloads::{paper_trace_suite, TraceGenerator};

const PAGE: u64 = 4096;
/// Conservative flush bandwidth of the backing SSD (§5.1).
const FLUSH_BW: u64 = 2_000_000_000;

fn main() {
    println!("battery provisioning plan per application volume");
    println!("{:-<100}", "");
    println!(
        "{:<22} {:>3} {:>12} {:>14} {:>14} {:>14} {:>10}",
        "application", "vol", "volume", "full battery", "viyojit", "p99 skew", "saving"
    );

    let power = PowerModel::datacenter_server(64.0);
    for app in paper_trace_suite() {
        for (vi, vol) in app.volumes.iter().enumerate() {
            // Analyse one generated trace both ways.
            let events: Vec<_> =
                TraceGenerator::new(vol, app.duration, 0xB41 + vi as u64).collect();
            let intervals = IntervalWriteStats::from_events(
                events.iter().copied(),
                SimDuration::from_secs(3600),
                vol.pages,
            );
            let skew = WriteSkewAnalysis::from_events(events);

            // Traditional: battery for the whole volume. Viyojit: battery
            // for the worst observed hour of writes (with 2x headroom).
            let full = DirtyBudget::from_bytes(vol.pages * PAGE);
            let worst_fraction = intervals.worst_fraction();
            let budget_pages =
                ((2.0 * worst_fraction * vol.pages as f64).ceil() as u64).clamp(1, vol.pages);
            let viyojit = DirtyBudget::from_pages(budget_pages);

            let full_joules = full.required_nameplate_joules(&power, FLUSH_BW, 0.5, 0.0);
            let viyojit_joules = viyojit.required_nameplate_joules(&power, FLUSH_BW, 0.5, 0.0);

            println!(
                "{:<22} {:>3} {:>9} MiB {:>12.1} J {:>12.1} J {:>13.1}% {:>9.1}x",
                app.app.name(),
                vol.name,
                vol.pages * PAGE / (1024 * 1024),
                full_joules,
                viyojit_joules,
                skew.percent_of_total(99.0, vol.pages),
                full_joules / viyojit_joules,
            );
        }
    }

    println!("{:-<100}", "");
    println!(
        "\"full battery\" backs up the whole volume; \"viyojit\" covers twice the worst \
         observed one-hour write volume. \"p99 skew\" is the volume fraction holding 99% of \
         writes (Fig. 4); highly-skewed, low-write volumes enjoy the largest savings."
    );
}
