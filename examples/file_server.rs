//! The motivating scenario from the paper's opening (§1, §2): a file
//! server keeping its volumes entirely in battery-backed DRAM. Files live
//! in the `nvfs` layer on a Viyojit-managed region; a power failure
//! flushes only the bounded dirty set, and the volume is back — intact —
//! after recovery.
//!
//! Run with: `cargo run --release --example file_server`

use nvfs::NvFileSystem;
use pheap::PHeap;
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use viyojit::{Viyojit, ViyojitConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 32 MiB NV-DRAM volume with battery for 512 dirty pages (~6%).
    let nv = Viyojit::new(
        8192,
        ViyojitConfig::builder(512).total_pages(8192).build()?,
        Clock::new(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    );
    let heap = PHeap::format(nv, 7000 * 4096)?;
    let region = heap.region();
    let mut fs = NvFileSystem::format(heap)?;

    // Serve a mixed file workload: logs append, documents update in place.
    let log = fs.create(b"/var/log/requests.log")?;
    let mut log_end = 0u64;
    for doc in 0..40u64 {
        let file = fs.create(format!("/docs/report-{doc:02}.txt").as_bytes())?;
        fs.write(file, 0, format!("report {doc}, revision 1").as_bytes())?;
    }
    for request in 0..2_000u64 {
        let line = format!("GET /docs/report-{:02}.txt 200\n", request % 40);
        fs.write(log, log_end, line.as_bytes())?;
        log_end += line.len() as u64;
        if request % 5 == 0 {
            let file = fs
                .lookup(format!("/docs/report-{:02}.txt", request % 40).as_bytes())?
                .expect("document exists");
            fs.write(
                file,
                0,
                format!("report {}, revision {request}", request % 40).as_bytes(),
            )?;
        }
    }
    let before = fs.stats()?;
    println!(
        "served 2k requests: {} files, {} KiB live, dirty pages {}/{}",
        before.files,
        before.used_bytes / 1024,
        fs.nv().dirty_count(),
        fs.nv().dirty_budget()
    );

    // The rack loses power.
    let mut nv = fs.into_heap().into_inner();
    let report = nv.power_failure();
    println!(
        "power failure: flushed {} pages ({} KiB) on battery in {}",
        report.dirty_pages,
        report.bytes_flushed / 1024,
        report.flush_time
    );
    nv.recover();

    // The volume is back, byte for byte.
    let mut fs = NvFileSystem::open(PHeap::open(nv, region)?)?;
    let after = fs.stats()?;
    assert_eq!(after.files, before.files);
    assert_eq!(after.used_bytes, before.used_bytes);
    let log = fs.lookup(b"/var/log/requests.log")?.expect("log survives");
    let mut tail = vec![0u8; 32];
    fs.read(log, log_end - 32, &mut tail)?;
    println!(
        "recovered: {} files, {} KiB; log tail: {:?}",
        after.files,
        after.used_bytes / 1024,
        String::from_utf8_lossy(&tail).trim_end()
    );
    Ok(())
}
