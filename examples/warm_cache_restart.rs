//! The paper's headline application (§6.1): a Redis-like cache whose
//! entire contents survive power cycles, so it restarts *warm* instead of
//! hammering the backing database — at a fraction of the battery a
//! full-DRAM backup would need.
//!
//! Run with: `cargo run --release --example warm_cache_restart`

use kvstore::KvStore;
use pheap::PHeap;
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use viyojit::{Viyojit, ViyojitConfig};
use workloads::{YcsbGenerator, YcsbOp, YcsbWorkload};

fn key(id: u64) -> Vec<u8> {
    format!("user{id:08}").into_bytes()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = Clock::new();
    let nv = Viyojit::new(
        8192, // 32 MiB NV-DRAM
        ViyojitConfig::builder(512).total_pages(8192).build()?,
        clock.clone(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    );
    let heap = PHeap::format(nv, 7000 * 4096)?;
    let mut kv = KvStore::create(heap, 8192)?;
    let region = kv.heap().region();

    // Populate the cache, then serve a read-mostly YCSB-B mix.
    let records = 4_000u64;
    for id in 0..records {
        kv.set(&key(id), format!("cached-value-{id}").as_bytes())?;
    }
    let mut gen = YcsbGenerator::new(YcsbWorkload::B, records, 7);
    let mut hits = 0u64;
    for _ in 0..20_000 {
        match gen.next_op() {
            YcsbOp::Read(id) => {
                if kv.get(&key(id))?.is_some() {
                    hits += 1;
                }
            }
            YcsbOp::Update(id) => kv.set(&key(id), format!("updated-{id}").as_bytes())?,
            _ => unreachable!("YCSB-B only reads and updates"),
        }
    }
    let before = kv.stats()?;
    println!(
        "served 20k ops ({hits} hits); cache holds {} entries; clock at {}",
        before.entries,
        clock.now()
    );

    // Datacenter power blip: flush the bounded dirty set, reboot, reopen.
    let mut nv = kv.into_heap().into_inner();
    let report = nv.power_failure();
    println!(
        "power failure flushed only {} pages ({} KiB) on battery",
        report.dirty_pages,
        report.bytes_flushed / 1024
    );
    nv.recover();

    // The cache comes back warm: no cold-start thundering herd against
    // the backing database.
    let heap = PHeap::open(nv, region)?;
    let mut kv = KvStore::open(heap)?;
    let after = kv.stats()?;
    assert_eq!(after.entries, before.entries, "entries lost in the blip");
    let mut warm_hits = 0u64;
    for id in (0..records).step_by(17) {
        if kv.get(&key(id))?.is_some() {
            warm_hits += 1;
        }
    }
    println!(
        "restart complete: {} entries intact, {warm_hits}/{} sampled keys served warm",
        after.entries,
        records.div_ceil(17)
    );
    Ok(())
}
