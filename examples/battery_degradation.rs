//! §8 "Handling battery cell failures": the dirty budget is a *runtime*
//! knob. When battery health drops (a failed cell, a hot aisle), Viyojit
//! re-derives the budget and flushes down to it instead of halting the
//! server — and durability holds across a power failure at every step.
//!
//! Run with: `cargo run --release --example battery_degradation`

use battery_sim::{Battery, BatteryConfig, DirtyBudget, PowerModel};
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use viyojit::{NvHeap, Viyojit, ViyojitConfig};

const FLUSH_BW: u64 = 2_000_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = PowerModel::datacenter_server(0.032); // 32 MiB of DRAM
    let mut battery = Battery::new(BatteryConfig::with_capacity_joules(2.4));

    let initial_budget = DirtyBudget::derive(&battery, &power, FLUSH_BW);
    println!(
        "fresh battery: {:.1} J usable -> budget {} pages",
        battery.effective_joules(),
        initial_budget.pages()
    );

    let mut nv = Viyojit::new(
        8192,
        ViyojitConfig::builder(initial_budget.pages())
            .total_pages(8192)
            .build()?,
        Clock::new(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    );
    let region = nv.map(6000 * 4096)?;

    // Write steadily while the battery degrades through four seasons of
    // aging and one failed cell.
    let health_steps = [1.0, 0.92, 0.85, 0.70, 0.45];
    for (step, &health) in health_steps.iter().enumerate() {
        battery.set_health(health);
        let budget = DirtyBudget::derive(&battery, &power, FLUSH_BW);
        nv.set_dirty_budget(budget.pages().max(1));
        println!(
            "health {health:.0e}: budget now {} pages (dirty after flush-down: {})",
            nv.dirty_budget(),
            nv.dirty_count()
        );

        for page in 0..1500u64 {
            let offset = ((step as u64 * 997 + page * 13) % 6000) * 4096;
            nv.write(region, offset, &[step as u8; 128])?;
        }

        // Prove durability at this health level: a failure right now must
        // be coverable by the *degraded* battery.
        let report = nv.power_failure();
        assert!(
            report.survives(&battery, &power),
            "step {step}: flush needs {:.2} J but only {:.2} J available",
            report.energy_needed_joules(&power),
            battery.effective_joules()
        );
        nv.recover();
        println!(
            "  simulated failure: {} pages flushed using {:.2} of {:.2} available joules — data safe",
            report.dirty_pages,
            report.energy_needed_joules(&power),
            battery.effective_joules()
        );
    }

    println!("server rode the battery down to 45% health without ever risking data or halting");
    Ok(())
}
