//! Battery-to-budget integration: the §5.1 derivation chain drives a real
//! Viyojit instance, and the durability guarantee holds end-to-end against
//! the same battery the budget came from.

use battery_sim::{Battery, BatteryConfig, DirtyBudget, PowerModel};
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use viyojit::{NvHeap, Viyojit, ViyojitConfig};

const FLUSH_BW: u64 = 2_000_000_000;

fn server_power() -> PowerModel {
    PowerModel::datacenter_server(0.064) // 64 MiB of NV-DRAM
}

#[test]
fn derived_budget_always_survives_its_own_battery() {
    for &joules in &[1.0, 2.5, 5.0, 10.0] {
        let battery = Battery::new(BatteryConfig::with_capacity_joules(joules));
        let power = server_power();
        let config = ViyojitConfig::from_battery(&battery, &power, FLUSH_BW);
        let budget = config.dirty_budget_pages;
        let mut nv = Viyojit::new(
            16_384,
            config,
            Clock::new(),
            CostModel::calibrated(),
            SsdConfig::datacenter(),
        );
        let region = nv.map(12_000 * 4096).expect("map");
        // Saturate the budget with writes.
        for page in 0..6_000u64 {
            nv.write(region, page * 4096, &[0xEE; 64]).expect("write");
        }
        let report = nv.power_failure();
        assert!(report.dirty_pages <= budget);
        assert!(
            report.survives(&battery, &power),
            "{joules} J battery: needs {:.3} J, has {:.3} J",
            report.energy_needed_joules(&power),
            battery.effective_joules()
        );
    }
}

#[test]
fn budget_scales_linearly_with_battery_capacity() {
    let power = server_power();
    let small = Battery::new(BatteryConfig::with_capacity_joules(2.0));
    let large = Battery::new(BatteryConfig::with_capacity_joules(8.0));
    let b_small = DirtyBudget::derive(&small, &power, FLUSH_BW);
    let b_large = DirtyBudget::derive(&large, &power, FLUSH_BW);
    let ratio = b_large.bytes() as f64 / b_small.bytes() as f64;
    assert!((3.9..4.1).contains(&ratio), "expected ~4x, got {ratio}");
}

#[test]
fn reserve_and_depth_of_discharge_shrink_the_budget() {
    let power = server_power();
    let plain =
        Battery::new(BatteryConfig::with_capacity_joules(10.0).with_depth_of_discharge(1.0));
    let derated = Battery::new(
        BatteryConfig::with_capacity_joules(10.0)
            .with_depth_of_discharge(0.5)
            .with_reserve_fraction(0.2),
    );
    let b_plain = DirtyBudget::derive(&plain, &power, FLUSH_BW);
    let b_derated = DirtyBudget::derive(&derated, &power, FLUSH_BW);
    let ratio = b_derated.bytes() as f64 / b_plain.bytes() as f64;
    assert!(
        (0.39..0.41).contains(&ratio),
        "0.5 DoD x 0.8 reserve = 0.4, got {ratio}"
    );
}

#[test]
fn cell_failure_mid_run_keeps_durability() {
    let power = server_power();
    let mut battery = Battery::new(BatteryConfig::with_capacity_joules(6.0));
    let config = ViyojitConfig::from_battery(&battery, &power, FLUSH_BW);
    let mut nv = Viyojit::new(
        16_384,
        config,
        Clock::new(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    );
    let region = nv.map(12_000 * 4096).expect("map");
    for page in 0..4_000u64 {
        nv.write(region, page * 4096, &[1; 64]).expect("write");
    }

    // A cell fails: 40% of capacity gone. Re-derive and shrink online.
    battery.set_health(0.6);
    let new_budget = DirtyBudget::derive(&battery, &power, FLUSH_BW);
    nv.set_dirty_budget(new_budget.pages().max(1));
    nv.validate();

    // Failure at the degraded capacity still survives.
    let report = nv.power_failure();
    assert!(report.survives(&battery, &power));
    nv.recover();
    let mut buf = [0u8; 64];
    nv.read(region, 0, &mut buf).expect("read");
    assert_eq!(buf, [1; 64]);
}

#[test]
fn full_backup_battery_dwarfs_viyojit_battery() {
    // The headline economics: the paper's 60 GB NV-DRAM with an 11%
    // effective budget. At our scale, compare joules for full vs budget.
    let power = server_power();
    let full = DirtyBudget::from_bytes(60 * 1024 * 1024);
    let viyojit = DirtyBudget::from_bytes(2 * 1024 * 1024);
    let j_full = full.required_nameplate_joules(&power, FLUSH_BW, 0.5, 0.0);
    let j_viyojit = viyojit.required_nameplate_joules(&power, FLUSH_BW, 0.5, 0.0);
    assert!(
        (29.0..31.0).contains(&(j_full / j_viyojit)),
        "60/2 = 30x battery reduction, got {:.1}x",
        j_full / j_viyojit
    );
}
