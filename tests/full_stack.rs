//! Full-stack integration: YCSB workloads driving the Redis-like store on
//! the persistent heap on Viyojit, with crashes injected mid-workload.

use kvstore::KvStore;
use pheap::PHeap;
use sim_clock::{Clock, CostModel};
use ssd_sim::SsdConfig;
use viyojit::{NvStore, Viyojit, ViyojitConfig};
use workloads::{YcsbGenerator, YcsbOp, YcsbWorkload};

fn key(id: u64) -> Vec<u8> {
    format!("k{id:010}").into_bytes()
}

fn value(id: u64, gen: u8) -> Vec<u8> {
    vec![(id % 250) as u8 ^ gen; 400]
}

fn fresh_stack(budget: u64) -> (Clock, KvStore<Viyojit>) {
    let clock = Clock::new();
    let nv = Viyojit::new(
        2048,
        ViyojitConfig::builder(budget)
            .total_pages(2048)
            .build()
            .expect("valid test configuration"),
        clock.clone(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    );
    let heap = PHeap::format(nv, 1800 * 4096).expect("heap fits");
    let kv = KvStore::create(heap, 1024).expect("store");
    (clock, kv)
}

#[test]
fn every_ycsb_workload_completes_under_a_tight_budget() {
    let all_plus_e = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ];
    for workload in all_plus_e {
        let (_clock, mut kv) = fresh_stack(32);
        let records = 600u64;
        for id in 0..records {
            kv.set(&key(id), &value(id, 0)).expect("load");
        }
        let mut gen = YcsbGenerator::new(workload, records, 42);
        for _ in 0..3_000 {
            match gen.next_op() {
                YcsbOp::Read(id) => {
                    let _ = kv.get(&key(id)).expect("get");
                }
                YcsbOp::Update(id) | YcsbOp::Insert(id) => {
                    kv.set(&key(id), &value(id, 1)).expect("set");
                }
                YcsbOp::ReadModifyWrite(id) => {
                    let mut v = kv
                        .get(&key(id))
                        .expect("rmw get")
                        .unwrap_or_else(|| value(id, 0));
                    v[0] = v[0].wrapping_add(1);
                    kv.set(&key(id), &v).expect("rmw set");
                }
                YcsbOp::Scan(id, len) => {
                    let _ = kv.scan(&key(id), len as usize).expect("scan");
                }
            }
            assert!(
                kv.heap().heap().dirty_count() <= 32,
                "{}: budget violated",
                workload.name()
            );
        }
        kv.heap().heap().validate();
    }
}

#[test]
fn crash_mid_ycsb_preserves_every_committed_record() {
    let (_clock, mut kv) = fresh_stack(24);
    let records = 500u64;
    for id in 0..records {
        kv.set(&key(id), &value(id, 0)).expect("load");
    }
    // Track exactly what the store should contain.
    let mut expected: std::collections::HashMap<u64, Vec<u8>> =
        (0..records).map(|id| (id, value(id, 0))).collect();
    let mut gen = YcsbGenerator::new(YcsbWorkload::A, records, 9);
    for _ in 0..2_000 {
        match gen.next_op() {
            YcsbOp::Read(id) => {
                let _ = kv.get(&key(id)).expect("get");
            }
            YcsbOp::Update(id) => {
                kv.set(&key(id), &value(id, 3)).expect("set");
                expected.insert(id, value(id, 3));
            }
            other => unreachable!("YCSB-A: {other:?}"),
        }
    }

    let region = kv.heap().region();
    let mut nv = kv.into_heap().into_inner();
    let report = nv.power_failure();
    assert!(report.dirty_pages <= 24);
    nv.recover();

    let heap = PHeap::open(nv, region).expect("reopen heap");
    let mut kv = KvStore::open(heap).expect("reopen store");
    assert_eq!(kv.len().expect("len"), records);
    for (id, val) in &expected {
        assert_eq!(
            kv.get(&key(*id)).expect("post-crash get").as_ref(),
            Some(val),
            "record {id} lost or stale"
        );
    }
}

#[test]
fn repeated_crashes_between_workload_phases_accumulate_no_damage() {
    let (_clock, mut kv) = fresh_stack(16);
    let region = kv.heap().region();
    let mut generation = 0u8;
    for _cycle in 0..4 {
        generation += 1;
        for id in 0..200u64 {
            kv.set(&key(id), &value(id, generation)).expect("set");
        }
        let mut nv = kv.into_heap().into_inner();
        nv.power_failure();
        nv.recover();
        kv = KvStore::open(PHeap::open(nv, region).expect("heap")).expect("store");
        for id in 0..200u64 {
            assert_eq!(
                kv.get(&key(id)).expect("get"),
                Some(value(id, generation)),
                "generation {generation}, record {id}"
            );
        }
    }
}

#[test]
fn deletes_survive_crashes_too() {
    let (_clock, mut kv) = fresh_stack(16);
    let region = kv.heap().region();
    for id in 0..100u64 {
        kv.set(&key(id), &value(id, 0)).expect("set");
    }
    for id in (0..100u64).step_by(2) {
        assert!(kv.delete(&key(id)).expect("delete"));
    }
    let mut nv = kv.into_heap().into_inner();
    nv.power_failure();
    nv.recover();
    let mut kv = KvStore::open(PHeap::open(nv, region).expect("heap")).expect("store");
    assert_eq!(kv.len().expect("len"), 50);
    for id in 0..100u64 {
        let got = kv.get(&key(id)).expect("get");
        if id % 2 == 0 {
            assert_eq!(got, None, "deleted record {id} resurrected");
        } else {
            assert_eq!(got, Some(value(id, 0)), "kept record {id} lost");
        }
    }
}

/// Drives the same YCSB-F stream against any store and digests the reads.
fn ycsb_f_digest<S: NvStore>(nv: S) -> u64 {
    let heap = PHeap::format(nv, 1800 * 4096).expect("heap");
    let mut kv = KvStore::create(heap, 1024).expect("store");
    for id in 0..300u64 {
        kv.set(&key(id), &value(id, 0)).expect("load");
    }
    let mut gen = YcsbGenerator::new(YcsbWorkload::F, 300, 5);
    let mut digest = 0u64;
    for _ in 0..2_000 {
        match gen.next_op() {
            YcsbOp::Read(id) => {
                if let Some(v) = kv.get(&key(id)).expect("get") {
                    digest = digest.wrapping_mul(31).wrapping_add(v[0] as u64);
                }
            }
            YcsbOp::ReadModifyWrite(id) => {
                let mut v = kv
                    .get(&key(id))
                    .expect("rmw get")
                    .unwrap_or_else(|| value(id, 0));
                v[0] = v[0].wrapping_add(1);
                kv.set(&key(id), &v).expect("rmw set");
            }
            _ => {}
        }
    }
    digest
}

#[test]
fn viyojit_and_baseline_agree_on_results() {
    // Identical op streams must produce identical store contents on both
    // systems — the budget only affects *when* pages flush, never data.
    // Both stacks run through the same NvStore-generic driver.
    use viyojit::NvdramBaseline;

    let viyojit_digest = ycsb_f_digest(Viyojit::new(
        2048,
        ViyojitConfig::builder(8)
            .total_pages(2048)
            .build()
            .expect("valid test configuration"),
        Clock::new(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    ));

    let baseline_digest = ycsb_f_digest(NvdramBaseline::new(
        2048,
        Clock::new(),
        CostModel::calibrated(),
        SsdConfig::datacenter(),
    ));

    assert_eq!(viyojit_digest, baseline_digest);
}
