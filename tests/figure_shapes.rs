//! Guard-rail tests for the reproduction's headline claims: fast, scaled-
//! down versions of each figure's *shape*, so regressions in the shapes
//! the paper reports are caught by `cargo test` without running the full
//! figure harnesses.

use battery_sim::density_series;
use sim_clock::SimDuration;
use trace_analysis::{worst_interval_write_fraction, zipf_scaling_series, WriteSkewAnalysis};
use viyojit_bench::{gb_units_to_pages, run_baseline, run_viyojit, ExperimentConfig};
use workloads::{paper_trace_suite, TraceGenerator, YcsbWorkload};

fn quick_config(workload: YcsbWorkload) -> ExperimentConfig {
    ExperimentConfig {
        initial_records: 3_000,
        operations: 12_000,
        total_nv_pages: 4_096,
        ..ExperimentConfig::for_workload(workload)
    }
}

#[test]
fn fig1_shape_dram_outgrows_lithium_by_four_orders() {
    let series = density_series(1990, 2015, 2015);
    let last = series.last().expect("non-empty");
    assert!(last.dram_relative > 10_000.0);
    assert!(last.lithium_relative < 5.0);
}

#[test]
fn fig2_shape_majority_of_volumes_write_under_15_percent_per_hour() {
    let mut under = 0;
    let mut total = 0;
    for app in paper_trace_suite() {
        for (vi, vol) in app.volumes.iter().enumerate() {
            // Reduced op count for speed: scale ops down 10x.
            let spec = workloads::VolumeSpec {
                total_ops: vol.total_ops / 10,
                ..vol.clone()
            };
            let events = TraceGenerator::new(&spec, app.duration, 0x51 + vi as u64);
            // Scale the fraction back up to approximate the full trace.
            let f = 10.0
                * worst_interval_write_fraction(events, SimDuration::from_secs(3600), vol.pages);
            total += 1;
            if f < 0.15 {
                under += 1;
            }
        }
    }
    assert!(
        under * 2 > total,
        "majority must write <15%/hour: {under}/{total}"
    );
}

#[test]
fn fig3_shape_skewed_volumes_need_fewer_pages_than_unique_ones() {
    let suite = paper_trace_suite();
    let cosmos = suite
        .iter()
        .find(|a| a.app == workloads::AppKind::Cosmos)
        .expect("cosmos in suite");
    let skewed_vol = cosmos
        .volumes
        .iter()
        .find(|v| v.name == "F")
        .expect("volume F");
    let unique_vol = cosmos
        .volumes
        .iter()
        .find(|v| v.name == "E")
        .expect("volume E");
    let pct = |vol: &workloads::VolumeSpec| {
        let spec = workloads::VolumeSpec {
            total_ops: vol.total_ops / 10,
            ..vol.clone()
        };
        let skew = WriteSkewAnalysis::from_events(TraceGenerator::new(&spec, cosmos.duration, 3));
        skew.percent_of_touched(99.0)
    };
    assert!(
        pct(skewed_vol) < pct(unique_vol) / 2.0,
        "category-3 volume must be far more concentrated than category-4"
    );
}

#[test]
fn fig5_shape_hot_fraction_shrinks_with_scale() {
    let series = zipf_scaling_series(&[10_000, 100_000], &[90.0, 99.0], 0.99);
    assert!(
        series[2].page_fraction < series[0].page_fraction,
        "p90 shrinks"
    );
    assert!(
        series[3].page_fraction < series[1].page_fraction,
        "p99 shrinks"
    );
}

#[test]
fn fig7_shape_overhead_positive_and_decreasing_in_budget() {
    let cfg = quick_config(YcsbWorkload::A);
    let baseline = run_baseline(&cfg);
    let tight = run_viyojit(&cfg, 64);
    let mid = run_viyojit(&cfg, 512);
    let loose = run_viyojit(&cfg, 3_000);
    let (o_tight, o_mid, o_loose) = (
        tight.overhead_vs(&baseline),
        mid.overhead_vs(&baseline),
        loose.overhead_vs(&baseline),
    );
    assert!(
        o_tight > 0.0,
        "tight budgets must cost something: {o_tight:.1}"
    );
    assert!(
        o_tight > o_mid,
        "overhead must fall with budget: {o_tight:.1} vs {o_mid:.1}"
    );
    assert!(
        o_mid >= o_loose - 1.0,
        "and keep falling: {o_mid:.1} vs {o_loose:.1}"
    );
    assert!(
        o_loose < 7.0,
        "full-size budgets approach the baseline: {o_loose:.1}"
    );
}

#[test]
fn fig7_shape_read_heavy_cheaper_than_write_heavy() {
    let budget = 64;
    let write_heavy = {
        let cfg = quick_config(YcsbWorkload::A);
        run_viyojit(&cfg, budget).overhead_vs(&run_baseline(&cfg))
    };
    let read_heavy = {
        let cfg = quick_config(YcsbWorkload::B);
        run_viyojit(&cfg, budget).overhead_vs(&run_baseline(&cfg))
    };
    assert!(
        write_heavy > read_heavy,
        "A ({write_heavy:.1}%) must cost more than B ({read_heavy:.1}%)"
    );
}

#[test]
fn fig8_shape_p99_latency_always_above_baseline() {
    let cfg = quick_config(YcsbWorkload::A);
    let baseline = run_baseline(&cfg);
    for &budget in &[64u64, 3_000] {
        let viy = run_viyojit(&cfg, budget);
        let p99_base = baseline.latencies.update.percentile(99.0);
        let p99_viy = viy.latencies.update.percentile(99.0);
        assert!(
            p99_viy >= p99_base,
            "budget {budget}: write-protection faults must show in the tail \
             ({p99_viy} < {p99_base})"
        );
    }
}

#[test]
fn fig9_shape_write_rate_decreases_with_budget() {
    let cfg = quick_config(YcsbWorkload::A);
    let tight = run_viyojit(&cfg, 64);
    let loose = run_viyojit(&cfg, 2_048);
    assert!(
        tight.run_ssd_bytes > loose.run_ssd_bytes,
        "smaller budgets force more copy-out: {} vs {}",
        tight.run_ssd_bytes,
        loose.run_ssd_bytes
    );
}

#[test]
fn fig10_shape_larger_heaps_lower_overhead_at_equal_fraction() {
    let overhead_at = |records: u64, budget_fraction: f64| {
        let cfg = ExperimentConfig {
            initial_records: records,
            operations: 12_000,
            total_nv_pages: 8_192,
            ..ExperimentConfig::for_workload(YcsbWorkload::A)
        };
        let budget = gb_units_to_pages(budget_fraction * records as f64 / 766.0).max(16);
        run_viyojit(&cfg, budget).overhead_vs(&run_baseline(&cfg))
    };
    let small_heap = overhead_at(2_000, 0.11);
    let large_heap = overhead_at(6_000, 0.11);
    assert!(
        large_heap <= small_heap + 2.0,
        "larger heap must not be slower at the same fraction: {large_heap:.1} vs {small_heap:.1}"
    );
}

#[test]
fn tlb_ablation_shape_stale_walks_cause_more_faults() {
    let exact_cfg = quick_config(YcsbWorkload::A);
    let stale_cfg = ExperimentConfig {
        tlb_flush_on_walk: false,
        ..quick_config(YcsbWorkload::A)
    };
    let exact = run_viyojit(&exact_cfg, 64);
    let stale = run_viyojit(&stale_cfg, 64);
    assert!(
        stale.stats.expect("stats").faults_handled > exact.stats.expect("stats").faults_handled,
        "stale dirty bits must degrade victim selection"
    );
}
